"""Sub-block (run) extraction tests, incl. hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.subblock import extract_runs, mask_of_run


class TestBasicExtraction:
    def test_empty_mask(self):
        assert extract_runs(0) == []

    def test_single_run(self):
        mask = mask_of_run(8, 12)
        assert extract_runs(mask) == [(8, 12)]

    def test_two_runs(self):
        mask = mask_of_run(0, 4) | mask_of_run(16, 8)
        assert extract_runs(mask) == [(0, 4), (16, 8)]

    def test_full_block(self):
        mask = mask_of_run(0, 64)
        assert extract_runs(mask) == [(0, 64)]

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            extract_runs(-1)


class TestGranularity:
    def test_snap_outward(self):
        # Bytes 5..6 used; instruction granularity 4 snaps to [4, 8).
        mask = mask_of_run(5, 2)
        assert extract_runs(mask, granularity=4) == [(4, 4)]

    def test_snapping_merges_adjacent_runs(self):
        # [2,4) and [5,7) both snap into [0,8) => one run.
        mask = mask_of_run(2, 2) | mask_of_run(5, 2)
        assert extract_runs(mask, granularity=4) == [(0, 8)]

    def test_aligned_runs_unchanged(self):
        mask = mask_of_run(4, 8)
        assert extract_runs(mask, granularity=4) == [(4, 8)]

    def test_snap_clamped_to_block(self):
        mask = mask_of_run(62, 2)
        runs = extract_runs(mask, granularity=4)
        assert runs == [(60, 4)]


class TestMergeGap:
    def test_gap_merging(self):
        mask = mask_of_run(0, 4) | mask_of_run(8, 4)
        assert extract_runs(mask, merge_gap=4) == [(0, 12)]

    def test_gap_too_large(self):
        mask = mask_of_run(0, 4) | mask_of_run(16, 4)
        assert extract_runs(mask, merge_gap=4) == [(0, 4), (16, 4)]

    def test_chained_merging(self):
        mask = mask_of_run(0, 4) | mask_of_run(8, 4) | mask_of_run(16, 4)
        assert extract_runs(mask, merge_gap=4) == [(0, 20)]


@st.composite
def byte_masks(draw):
    n_runs = draw(st.integers(0, 6))
    mask = 0
    for _ in range(n_runs):
        start = draw(st.integers(0, 63))
        length = draw(st.integers(1, 64 - start))
        mask |= mask_of_run(start, length)
    return mask


class TestProperties:
    @given(mask=byte_masks(), granularity=st.sampled_from([1, 2, 4]),
           merge_gap=st.sampled_from([0, 4, 8]))
    @settings(max_examples=300, deadline=None)
    def test_runs_cover_all_set_bits(self, mask, granularity, merge_gap):
        runs = extract_runs(mask, granularity, merge_gap=merge_gap)
        covered = 0
        for start, length in runs:
            covered |= mask_of_run(start, length)
        assert mask & ~covered == 0

    @given(mask=byte_masks(), granularity=st.sampled_from([1, 2, 4]),
           merge_gap=st.sampled_from([0, 8]))
    @settings(max_examples=300, deadline=None)
    def test_runs_disjoint_sorted_aligned(self, mask, granularity, merge_gap):
        runs = extract_runs(mask, granularity, merge_gap=merge_gap)
        prev_end = -1
        for start, length in runs:
            assert length > 0
            assert start % granularity == 0
            assert start > prev_end
            assert start + length <= 64
            prev_end = start + length - 1

    @given(mask=byte_masks())
    @settings(max_examples=200, deadline=None)
    def test_byte_granularity_exact(self, mask):
        runs = extract_runs(mask, granularity=1)
        covered = 0
        for start, length in runs:
            covered |= mask_of_run(start, length)
        assert covered == mask
