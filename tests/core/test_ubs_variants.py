"""Tests for the UBS ablation knobs (merge gap, window, replacement)."""

import pytest

from repro.core.ubs_cache import UBSICache
from repro.errors import ConfigurationError
from repro.memory.ghrp import GHRPPolicy
from repro.memory.replacement import LRUPolicy
from repro.params import UBSParams


def addr_of(block, offset=0):
    return (block << 6) + offset


class TestCandidateWindow:
    def _install_many(self, ubs, lengths, block_base=16):
        """Install several same-length runs into one set."""
        step = ubs.predictor.config.sets
        block = block_base
        for length in lengths:
            ubs.fill(addr_of(block))
            assert ubs.lookup(addr_of(block), length).hit
            ubs.fill(addr_of(block + step))       # evict from predictor
            ubs.fill(addr_of(block + 2 * step))   # flush the conflictor too
            block += 4 * step                     # same cache set (sets=4)

    def test_window1_restricts_to_exact_fit(self):
        params = UBSParams(sets=4, predictor_sets=4, candidate_window=1,
                           run_merge_gap=0)
        ubs = UBSICache(params)
        # Three 16-byte runs with window=1 all contend for the single
        # exact-fit way; only the newest survives there.
        self._install_many(ubs, [16, 16, 16])
        set_idx = 0
        sixteen_ways = [w for w, size in enumerate(ubs.way_sizes)
                        if size == 16]
        occupied = [w for w in range(ubs.n_ways)
                    if ubs._tags[set_idx][w] is not None
                    and ubs.way_sizes[w] >= 16]
        # With window=1 every 16B run lands in the one 16B way.
        assert all(w in sixteen_ways for w in occupied
                   if ubs.way_sizes[w] == 16)

    def test_window16_spreads_runs(self):
        params = UBSParams(sets=4, predictor_sets=4, candidate_window=16,
                           run_merge_gap=0)
        ubs = UBSICache(params)
        self._install_many(ubs, [16, 16, 16])
        set_idx = 0
        survivors = sum(1 for w in range(ubs.n_ways)
                        if ubs._tags[set_idx][w] is not None)
        assert survivors >= 3   # wide window keeps all three resident

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            UBSParams(candidate_window=0)


class TestReplacementChoice:
    def test_default_is_lru(self):
        assert isinstance(UBSICache().policy, LRUPolicy)

    def test_ghrp_selectable(self):
        ubs = UBSICache(UBSParams(replacement="ghrp"))
        assert isinstance(ubs.policy, GHRPPolicy)

    def test_unknown_replacement_rejected(self):
        with pytest.raises(ConfigurationError):
            UBSParams(replacement="belady")

    def test_ghrp_variant_functions(self):
        ubs = UBSICache(UBSParams(sets=4, predictor_sets=4,
                                  replacement="ghrp"))
        for block in range(16, 48, 4):
            res = ubs.lookup(addr_of(block), 16)
            if not res.hit:
                ubs.fill(res.block_addr)
                assert ubs.lookup(addr_of(block), 16).hit


class TestBuildConfigs:
    def test_gap_config(self):
        from repro.cpu.machine import build_icache
        assert build_icache("ubs_gap0").params.run_merge_gap == 0
        assert build_icache("ubs_gap8").params.run_merge_gap == 8

    def test_window_config(self):
        from repro.cpu.machine import build_icache
        assert build_icache("ubs_win1").params.candidate_window == 1
        assert build_icache("ubs_win16").params.candidate_window == 16

    def test_ghrp_config(self):
        from repro.cpu.machine import build_icache
        assert isinstance(build_icache("ubs_ghrp").policy, GHRPPolicy)
