"""Logical-way consolidation (bin packing) tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.consolidation import (
    consolidate_ways,
    physical_way_of,
    shift_amount,
)
from repro.errors import ConfigurationError
from repro.params import DEFAULT_UBS_WAY_SIZES


class TestConsolidation:
    def test_default_config_fits_8_physical_ways(self):
        bins = consolidate_ways(DEFAULT_UBS_WAY_SIZES)
        assert len(bins) == 8  # 7 data ways + the predictor (Section VI-I2)

    def test_bins_respect_capacity(self):
        bins = consolidate_ways(DEFAULT_UBS_WAY_SIZES,
                                include_predictor=False)
        for members in bins:
            assert sum(DEFAULT_UBS_WAY_SIZES[i] for i in members) <= 64

    def test_every_way_packed_once(self):
        bins = consolidate_ways(DEFAULT_UBS_WAY_SIZES,
                                include_predictor=False)
        packed = sorted(i for members in bins for i in members)
        assert packed == list(range(len(DEFAULT_UBS_WAY_SIZES)))

    def test_predictor_gets_own_bin(self):
        bins = consolidate_ways(DEFAULT_UBS_WAY_SIZES)
        assert bins[-1] == [len(DEFAULT_UBS_WAY_SIZES)]

    def test_oversized_way_rejected(self):
        with pytest.raises(ConfigurationError):
            consolidate_ways((4, 65))

    @given(ways=st.lists(st.integers(1, 64), min_size=1, max_size=24))
    @settings(max_examples=200, deadline=None)
    def test_packing_validity_property(self, ways):
        bins = consolidate_ways(ways, include_predictor=False)
        packed = sorted(i for members in bins for i in members)
        assert packed == list(range(len(ways)))
        for members in bins:
            assert sum(ways[i] for i in members) <= 64
        # FFD is within the classic bound of optimal; at least check we
        # never exceed one bin per way.
        assert len(bins) <= len(ways)


class TestMapping:
    def test_offsets_within_physical_way(self):
        bins = consolidate_ways(DEFAULT_UBS_WAY_SIZES)
        mapping = physical_way_of(DEFAULT_UBS_WAY_SIZES, bins)
        assert len(mapping) == len(DEFAULT_UBS_WAY_SIZES) + 1
        for idx, (phys, offset) in mapping.items():
            assert 0 <= phys < len(bins)
            assert 0 <= offset < 64

    def test_shift_amount_adds_preceding_sizes(self):
        ways = (8, 8, 48)
        bins = [[2, 0, 1]]  # one physical way: 48 + 8 + 8
        assert shift_amount(ways, bins, logical_way=2, fetch_byte_offset=4) == 4
        assert shift_amount(ways, bins, logical_way=0, fetch_byte_offset=0) == 48
        assert shift_amount(ways, bins, logical_way=1, fetch_byte_offset=3) == 59

    def test_shift_amount_bounds_checked(self):
        ways = (8, 8, 48)
        bins = [[0, 1, 2]]
        with pytest.raises(ConfigurationError):
            shift_amount(ways, bins, logical_way=0, fetch_byte_offset=8)
        with pytest.raises(ConfigurationError):
            shift_amount(ways, bins, logical_way=9, fetch_byte_offset=0)

    def test_shift_amount_for_default_config_in_range(self):
        bins = consolidate_ways(DEFAULT_UBS_WAY_SIZES)
        for way, size in enumerate(DEFAULT_UBS_WAY_SIZES):
            shift = shift_amount(DEFAULT_UBS_WAY_SIZES, bins, way, size - 1)
            assert 0 <= shift < 64
