"""Way-size designer tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.designer import design_params, design_way_sizes
from repro.errors import ConfigurationError
from repro.params import DEFAULT_UBS_WAY_SIZES


def histogram_from_demands(demands):
    counts = [0] * 65
    for d in demands:
        counts[d] += 1
    return counts


class TestQuantileDesign:
    def test_uniform_demands_give_spread_sizes(self):
        counts = histogram_from_demands(
            [4] * 100 + [16] * 100 + [32] * 100 + [64] * 100)
        sizes = design_way_sizes(counts, n_ways=4, budget=4 + 16 + 32 + 64)
        assert sizes == (4, 16, 32, 64)

    def test_small_demands_give_small_ways(self):
        counts = histogram_from_demands([4] * 1000 + [64] * 10)
        sizes = design_way_sizes(counts, n_ways=4, budget=76)
        assert sizes[0] == 4 and sizes[1] == 4

    def test_all_full_blocks(self):
        counts = histogram_from_demands([64] * 100)
        sizes = design_way_sizes(counts, n_ways=4, budget=256)
        assert sizes == (64, 64, 64, 64)

    def test_budget_respected(self):
        counts = histogram_from_demands([8] * 50 + [24] * 50 + [64] * 50)
        sizes = design_way_sizes(counts, n_ways=16, budget=444)
        assert sum(sizes) == 444

    def test_empty_histogram_rejected(self):
        with pytest.raises(ConfigurationError):
            design_way_sizes([0] * 65, n_ways=4)

    def test_too_small_budget_rejected(self):
        counts = histogram_from_demands([64] * 10)
        with pytest.raises(ConfigurationError):
            design_way_sizes(counts, n_ways=16, budget=32)

    def test_short_histogram_rejected(self):
        with pytest.raises(ConfigurationError):
            design_way_sizes([1] * 10, n_ways=4)


class TestParamsConstruction:
    def test_designed_params_validate(self):
        counts = histogram_from_demands(
            [4] * 300 + [12] * 200 + [28] * 200 + [52] * 100 + [64] * 120)
        params = design_params(counts)
        assert len(params.way_sizes) == 16
        assert params.data_bytes_per_set == sum(params.way_sizes) + 64

    def test_table2_like_profile_reproduces_table2_shape(self):
        """Feeding a Fig.-1b-like distribution yields a Table-II-like
        way list: several tiny ways, a mid range, a few 64B ways."""
        demands = ([4] * 190 + [8] * 110 + [12] * 90 + [16] * 80
                   + [24] * 110 + [32] * 90 + [40] * 70 + [52] * 90
                   + [64] * 170)
        counts = histogram_from_demands(demands)
        sizes = design_way_sizes(counts, n_ways=16, budget=444)
        assert sizes[0] <= 8
        assert sizes[-1] >= 56   # budget repair may trim the top way
        assert sum(sizes) == 444
        small = sum(1 for s in sizes if s <= 16)
        assert 4 <= small <= 10  # Table II has 8


class TestProperties:
    @given(demands=st.lists(st.integers(1, 64), min_size=5, max_size=400),
           n_ways=st.sampled_from([8, 12, 16]),
           budget=st.sampled_from([256, 444, 512]))
    @settings(max_examples=100, deadline=None)
    def test_always_valid(self, demands, n_ways, budget):
        counts = histogram_from_demands(
            [((d + 3) // 4) * 4 for d in demands])
        sizes = design_way_sizes(counts, n_ways=n_ways, budget=budget)
        assert len(sizes) == n_ways
        assert list(sizes) == sorted(sizes)
        assert all(4 <= s <= 64 and s % 4 == 0 for s in sizes)
        assert abs(sum(sizes) - budget) <= 64  # within one repair step

    @given(n_ways=st.sampled_from([12, 16, 18]))
    @settings(max_examples=10, deadline=None)
    def test_default_budget_from_table2_histogram(self, n_ways):
        # A histogram exactly matching Table II's way sizes as demands.
        counts = histogram_from_demands(list(DEFAULT_UBS_WAY_SIZES) * 10)
        sizes = design_way_sizes(counts, n_ways=n_ways, budget=444)
        assert sum(sizes) == 444
