"""Table IV / Section VI-I latency model tests."""

import pytest

from repro.core.latency import (
    ADDER_6BIT_NS,
    COMPARATOR_NS,
    UBS_HIT_LOGIC_NS,
    data_array_latency,
    latency_report,
    tag_array_latency,
)
from repro.params import DEFAULT_UBS_WAY_SIZES


class TestCalibrationPoints:
    def test_tag_8way(self):
        assert tag_array_latency(8) == pytest.approx(0.09)

    def test_tag_17way(self):
        assert tag_array_latency(17) == pytest.approx(0.12, abs=0.005)

    def test_data_8way(self):
        assert data_array_latency(8) == pytest.approx(0.77)

    def test_data_17way(self):
        assert data_array_latency(17) == pytest.approx(1.71)

    def test_monotonic_in_ways(self):
        assert data_array_latency(12) > data_array_latency(8)
        assert tag_array_latency(12) > tag_array_latency(8)


class TestSynthesisConstants:
    def test_hit_logic_is_1_6x_comparator(self):
        assert UBS_HIT_LOGIC_NS == pytest.approx(1.6 * COMPARATOR_NS,
                                                 abs=1e-3)

    def test_paper_values(self):
        assert COMPARATOR_NS == 0.018
        assert UBS_HIT_LOGIC_NS == 0.028
        assert ADDER_6BIT_NS == 0.01


class TestReport:
    def test_paper_conclusions(self):
        r = latency_report(DEFAULT_UBS_WAY_SIZES)
        assert r.ubs_hit_detect_ns == pytest.approx(0.13, abs=0.005)
        assert r.ubs_shift_amount_ns == pytest.approx(0.14, abs=0.005)
        assert r.physical_data_ways == 8
        assert r.ubs_data_ns == pytest.approx(0.77)
        assert not r.tag_path_critical
        assert not r.shift_on_critical_path
        assert r.same_latency_as_baseline

    def test_oversized_config_loses_latency_parity(self):
        # 24 x 64B ways cannot consolidate into 8 physical ways.
        r = latency_report((64,) * 24)
        assert r.physical_data_ways > 8
        assert not r.same_latency_as_baseline

    def test_smaller_config_keeps_parity(self):
        from repro.core.configs import way_config
        r = latency_report(way_config(12, 1))
        assert r.same_latency_as_baseline
