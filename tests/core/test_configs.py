"""UBS configuration catalogue tests."""

import pytest

from repro.core.configs import (
    WAY_CONFIGS,
    ubs_params_for_budget,
    way_config,
)
from repro.errors import ConfigurationError
from repro.params import DEFAULT_UBS_WAY_SIZES, UBSParams


class TestCatalogue:
    def test_paper_14way_lists(self):
        assert way_config(14, 1) == (4, 4, 8, 12, 16, 24, 28, 28, 32, 36,
                                     36, 64, 64, 64)
        assert way_config(14, 2) == (4, 4, 8, 16, 24, 28, 32, 36, 40, 44,
                                     52, 60, 64, 64)

    def test_16way_config1_is_default(self):
        assert way_config(16, 1) == DEFAULT_UBS_WAY_SIZES

    def test_all_configs_sorted_and_valid(self):
        for (n_ways, _cfg), sizes in WAY_CONFIGS.items():
            assert len(sizes) == n_ways
            assert list(sizes) == sorted(sizes)
            assert all(4 <= s <= 64 for s in sizes)
            UBSParams(way_sizes=sizes)  # passes validation

    def test_budgets_comparable(self):
        default = sum(DEFAULT_UBS_WAY_SIZES)
        for sizes in WAY_CONFIGS.values():
            assert abs(sum(sizes) - default) < 0.25 * default

    def test_unknown_config(self):
        with pytest.raises(ConfigurationError):
            way_config(11, 1)


class TestBudgetScaling:
    def test_default_budget_is_64_sets(self):
        params = ubs_params_for_budget(32 * 1024)
        assert params.sets == 64

    def test_half_budget_halves_sets(self):
        params = ubs_params_for_budget(16 * 1024)
        assert params.sets == 32

    def test_double_budget(self):
        params = ubs_params_for_budget(64 * 1024)
        assert params.sets == 128

    def test_intermediate_budget_widens_ways(self):
        params = ubs_params_for_budget(20 * 1024)
        assert params.sets == 32
        assert params.data_capacity > ubs_params_for_budget(16 * 1024).data_capacity
        assert params.data_capacity <= 20 * 1024

    def test_way_profile_preserved(self):
        params = ubs_params_for_budget(128 * 1024)
        assert params.way_sizes[:16] == DEFAULT_UBS_WAY_SIZES

    def test_scaled_params_validate(self):
        for kb in (16, 20, 32, 64, 128):
            params = ubs_params_for_budget(kb * 1024)
            assert params.data_capacity <= kb * 1024 * 1.05
