"""UBS configuration catalogue tests."""

import pytest

from repro.core.configs import (
    CATALOG_BUDGET_TOLERANCE,
    DATA_BUDGET_BYTES,
    WAY_CONFIGS,
    check_way_sizes,
    data_budget,
    ubs_params_for_budget,
    way_config,
)
from repro.errors import ConfigurationError
from repro.params import DEFAULT_UBS_WAY_SIZES, UBSParams


class TestCatalogue:
    def test_paper_14way_lists(self):
        assert way_config(14, 1) == (4, 4, 8, 12, 16, 24, 28, 28, 32, 36,
                                     36, 64, 64, 64)
        assert way_config(14, 2) == (4, 4, 8, 16, 24, 28, 32, 36, 40, 44,
                                     52, 60, 64, 64)

    def test_16way_config1_is_default(self):
        assert way_config(16, 1) == DEFAULT_UBS_WAY_SIZES

    def test_all_configs_sorted_and_valid(self):
        for (n_ways, _cfg), sizes in WAY_CONFIGS.items():
            assert len(sizes) == n_ways
            assert list(sizes) == sorted(sizes)
            assert all(4 <= s <= 64 for s in sizes)
            UBSParams(way_sizes=sizes)  # passes validation

    def test_budgets_comparable(self):
        default = sum(DEFAULT_UBS_WAY_SIZES)
        for sizes in WAY_CONFIGS.values():
            assert abs(sum(sizes) - default) < 0.25 * default

    def test_unknown_config(self):
        with pytest.raises(ConfigurationError):
            way_config(11, 1)

    def test_unknown_config_error_lists_catalogue(self):
        with pytest.raises(ConfigurationError) as exc:
            way_config(11, 3)
        message = str(exc.value)
        assert "11 ways" in message
        assert "[10, 12, 14, 16, 18]" in message

    def test_every_catalogue_entry_passes_the_dse_checker(self):
        """The same validator repro.dse.space uses must accept every
        catalogued list within the documented budget tolerance."""
        for sizes in WAY_CONFIGS.values():
            check_way_sizes(sizes)      # defaults = catalogue invariants

    def test_catalogue_tolerance_is_tight(self):
        spread = max(
            abs(data_budget(sizes) - DATA_BUDGET_BYTES) / DATA_BUDGET_BYTES
            for sizes in WAY_CONFIGS.values()
        )
        assert spread <= CATALOG_BUDGET_TOLERANCE
        # The documented tolerance is not slack: shaving 4% off it must
        # exclude at least one catalogued entry.
        with pytest.raises(ConfigurationError):
            for sizes in WAY_CONFIGS.values():
                check_way_sizes(sizes,
                                tolerance=CATALOG_BUDGET_TOLERANCE - 0.04)


class TestWaySizeChecker:
    def test_default_passes(self):
        check_way_sizes(DEFAULT_UBS_WAY_SIZES)
        assert data_budget(DEFAULT_UBS_WAY_SIZES) == DATA_BUDGET_BYTES == 444

    def test_empty_vector(self):
        with pytest.raises(ConfigurationError, match="empty"):
            check_way_sizes(())

    def test_budget_error_names_vector_and_budget(self):
        sizes = (64,) * 16              # 1024 B, way over budget
        with pytest.raises(ConfigurationError) as exc:
            check_way_sizes(sizes)
        message = str(exc.value)
        assert "1024 B" in message      # the computed budget
        assert str(sizes) in message    # the offending vector
        assert "444 B" in message       # the target budget

    def test_monotonicity_error_names_vector(self):
        sizes = tuple(reversed(DEFAULT_UBS_WAY_SIZES))
        with pytest.raises(ConfigurationError) as exc:
            check_way_sizes(sizes)
        message = str(exc.value)
        assert "monotone" in message and str(sizes) in message

    def test_granularity_error_names_vector(self):
        sizes = (6,) * 74               # 444 B but not multiples of 4
        with pytest.raises(ConfigurationError) as exc:
            check_way_sizes(sizes)
        message = str(exc.value)
        assert "multiples of 4" in message and str(sizes) in message

    def test_oversized_way_rejected(self):
        with pytest.raises(ConfigurationError, match="4..64"):
            check_way_sizes((4, 68), budget=72, tolerance=0.1)

    def test_custom_budget_band(self):
        check_way_sizes((16, 16), budget=32, tolerance=0.0)
        with pytest.raises(ConfigurationError):
            check_way_sizes((16, 20), budget=32, tolerance=0.0)


class TestBudgetScaling:
    def test_default_budget_is_64_sets(self):
        params = ubs_params_for_budget(32 * 1024)
        assert params.sets == 64

    def test_half_budget_halves_sets(self):
        params = ubs_params_for_budget(16 * 1024)
        assert params.sets == 32

    def test_double_budget(self):
        params = ubs_params_for_budget(64 * 1024)
        assert params.sets == 128

    def test_intermediate_budget_widens_ways(self):
        params = ubs_params_for_budget(20 * 1024)
        assert params.sets == 32
        assert params.data_capacity > ubs_params_for_budget(16 * 1024).data_capacity
        assert params.data_capacity <= 20 * 1024

    def test_way_profile_preserved(self):
        params = ubs_params_for_budget(128 * 1024)
        assert params.way_sizes[:16] == DEFAULT_UBS_WAY_SIZES

    def test_scaled_params_validate(self):
        for kb in (16, 20, 32, 64, 128):
            params = ubs_params_for_budget(kb * 1024)
            assert params.data_capacity <= kb * 1024 * 1.05
