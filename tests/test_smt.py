"""SMT co-run simulation: fetch-arbitration edge cases, shared-MSHR
behaviour, per-thread stall reconciliation, workload naming, interference
matrices and contention-aware pairing.

Solo-mode bit-parity with ``Machine.run`` lives in
``tests/test_golden_parity.py``; this file covers everything only a
*dual* run exercises.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from repro.cpu.machine import build_icache
from repro.errors import ConfigurationError
from repro.smt import (ARBITRATION_POLICIES, SMTMachine, THREAD_ADDR_STRIDE,
                       build_smt_machine)
from repro.smt.pairing import (contention_aware_pairing, greedy_pairing,
                               local_search, pair_cost,
                               predicted_cost_order, random_baseline,
                               random_pairing, total_slowdown)
from repro.telemetry import STALL, EventTrace, MSHR as EV_MSHR, Telemetry
from repro.trace.arrays import ArrayTrace
from repro.trace.record import Instruction, InstrKind
from repro.trace.workloads import (SMTWorkload, get_workload,
                                   is_smt_workload, smt_workload)


def _stream(n, base=0x10_0000):
    """Straight-line code touching a new 64-byte block every 16 instrs —
    far bigger than any L1-I here, so it misses continuously."""
    return ArrayTrace.from_instructions(
        [Instruction(base + 4 * i, 4, InstrKind.ALU) for i in range(n)])


def _loop(iters, body=12, base=0x20_0000):
    """A tiny loop that lives in one or two cache blocks: after the first
    iteration it always hits."""
    instrs = []
    for _ in range(iters):
        for j in range(body - 1):
            instrs.append(Instruction(base + 4 * j, 4, InstrKind.ALU))
        instrs.append(Instruction(base + 4 * (body - 1), 4, InstrKind.JUMP,
                                  taken=True, target=base))
    return ArrayTrace.from_instructions(instrs)


def _threads_of(result):
    """Per-thread result dicts of a composite, indexed by tid."""
    by_tid = {}
    for tdict in result.extra["threads"]:
        by_tid[tdict["extra"]["thread"]] = tdict
    return by_tid


class TestCoRunBasics:

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="arbitration policy"):
            SMTMachine([_stream(100)], build_icache("conv32"),
                       policy="lottery")

    def test_window_count_must_match_threads(self):
        machine = SMTMachine([_stream(100), _stream(100)],
                             build_icache("conv32"))
        with pytest.raises(ConfigurationError, match="windows for"):
            machine.run([(10, 50)])

    def test_window_must_fit_trace(self):
        machine = SMTMachine([_stream(100)], build_icache("conv32"))
        with pytest.raises(ConfigurationError, match="need"):
            machine.run([(50, 100)])

    def test_composite_result_shape(self):
        machine = SMTMachine([_stream(3000), _loop(260)],
                             build_icache("conv32"))
        result = machine.run([(500, 2000), (500, 2000)])
        smt = result.extra["smt"]
        assert smt["policy"] == "rr"
        assert smt["n_threads"] == 2
        assert result.instructions == 4000
        threads = _threads_of(result)
        assert set(threads) == {0, 1}
        for tid, tdict in threads.items():
            assert tdict["instructions"] == 2000
            assert tdict["cycles"] >= 1
            assert "arb_lost_cycles" in tdict["extra"]
        assert result.cycles == max(t["cycles"] for t in threads.values())
        # Summed front-end stats reconcile with the per-thread ones.
        for field in ("fetch_stall_cycles", "l1i_hits", "l1i_misses",
                      "branch_mispredicts"):
            assert result.frontend.__dict__[field] == sum(
                t["frontend"][field] for t in threads.values())

    def test_dual_has_no_efficiency_samples(self):
        machine = SMTMachine([_loop(300), _loop(300)],
                             build_icache("conv32"))
        result = machine.run([(100, 2000), (100, 2000)])
        assert result.efficiency is None
        for tdict in result.extra["threads"]:
            assert tdict["efficiency"] is None


class TestFetchArbitration:

    def test_one_trace_exhausts_first(self):
        """Very unequal windows: the short thread retires early, releases
        its pooled-FTQ claim, and the survivor runs to completion."""
        machine = SMTMachine([_stream(2000), _stream(20_000)],
                             build_icache("conv32"))
        result = machine.run([(200, 1000), (200, 16_000)])
        threads = _threads_of(result)
        assert threads[0]["instructions"] == 1000
        assert threads[1]["instructions"] == 16_000
        for t in machine.threads:
            assert t.finished
            assert t.delivered == t.total
        # All pooled-FTQ claims were returned when the threads retired.
        assert machine._ftq_occ == 0
        # The long thread dominates the co-run span.
        assert result.cycles == threads[1]["cycles"]

    def test_survivor_not_slower_than_short_thread(self):
        """After the short thread retires the survivor owns the whole
        front end; its measured span must comfortably exceed the short
        thread's (it ran 16x the instructions)."""
        machine = SMTMachine([_stream(2000), _stream(20_000)],
                             build_icache("conv32"))
        result = machine.run([(200, 1000), (200, 16_000)])
        threads = _threads_of(result)
        assert threads[1]["cycles"] > threads[0]["cycles"]

    def test_rr_no_starvation_under_permanent_stall(self):
        """One thread misses continuously (streaming), the other is a
        cache-resident loop. Round-robin must hand the loop the fetch
        port whenever the streamer is blocked: the loop's co-run span
        stays close to its solo span instead of scaling with the
        streamer's."""
        loop_solo = SMTMachine([_loop(1500)], build_icache("conv32"))
        solo_cycles = loop_solo.run([(600, 12_000)]).cycles

        machine = SMTMachine([_loop(1500), _stream(30_000)],
                             build_icache("conv32"))
        result = machine.run([(600, 12_000), (600, 24_000)])
        threads = _threads_of(result)
        corun_cycles = threads[0]["cycles"]
        assert corun_cycles < 2 * solo_cycles, (
            f"loop thread starved: {corun_cycles} co-run vs "
            f"{solo_cycles} solo cycles")
        # It can only have lost the port on cycles both were fetchable.
        assert threads[0]["extra"]["arb_lost_cycles"] <= corun_cycles

    def test_icount_policy_runs_and_is_recorded(self):
        machine = SMTMachine([_loop(600), _stream(6000)],
                             build_icache("conv32"), policy="icount")
        result = machine.run([(200, 4000), (200, 4000)])
        assert result.extra["smt"]["policy"] == "icount"
        assert ARBITRATION_POLICIES == ("rr", "icount")

    def test_policies_agree_on_totals(self):
        """Arbitration reorders delivery but never changes how many
        instructions each thread retires."""
        for policy in ARBITRATION_POLICIES:
            machine = SMTMachine([_loop(600), _stream(6000)],
                                 build_icache("conv32"), policy=policy)
            result = machine.run([(200, 4000), (200, 4000)])
            threads = _threads_of(result)
            assert threads[0]["instructions"] == 4000
            assert threads[1]["instructions"] == 4000


class TestSharedMSHR:

    def test_same_set_inflight_from_both_threads(self):
        """Two identical streams offset by THREAD_ADDR_STRIDE miss the
        same sets within a cycle of each other: the shared MSHR file must
        hold both threads' fills for one set concurrently, as distinct
        entries (the stride lands in tag bits — no cross-thread merge)."""
        telemetry = Telemetry(EventTrace(limit=200_000))
        machine = SMTMachine([_stream(4000), _stream(4000)],
                             build_icache("conv32"), telemetry=telemetry,
                             policy="rr")
        machine.run([(400, 3000), (400, 3000)])
        allocs = telemetry.recorder.of_kind(EV_MSHR)
        assert allocs, "no MSHR allocations recorded"
        by_thread = {0: [], 1: []}
        for e in allocs:
            tid = e.fields["thread"]
            block = e.fields["block"]
            # Address isolation: the block's thread bits must match the
            # allocating thread.
            assert block // THREAD_ADDR_STRIDE == tid
            by_thread[tid].append((block % THREAD_ADDR_STRIDE, e.cycle,
                                   e.fields["fill"]))
        assert by_thread[0] and by_thread[1], (
            "both threads must allocate in the shared MSHR file")
        # Find one low-address block whose two per-thread fills overlap
        # in time: same set, both in flight, two separate entries.
        t1_windows = {b: (c, f) for b, c, f in by_thread[1]}
        overlapping = [
            b for b, c, f in by_thread[0]
            if b in t1_windows
            and c < t1_windows[b][1] and t1_windows[b][0] < f
        ]
        assert overlapping, (
            "expected at least one set with both threads' fills in "
            "flight simultaneously")

    def test_no_cross_thread_block_aliasing(self):
        """Co-running a trace with itself must not *help* it: if the
        stride aliased, thread 1 would hit on thread 0's fills and miss
        less than solo."""
        solo = SMTMachine([_stream(4000)], build_icache("conv32"))
        solo_misses = solo.run([(400, 3000)]).frontend.l1i_misses

        machine = SMTMachine([_stream(4000), _stream(4000)],
                             build_icache("conv32"))
        result = machine.run([(400, 3000), (400, 3000)])
        threads = _threads_of(result)
        for tid in (0, 1):
            assert threads[tid]["frontend"]["l1i_misses"] >= solo_misses


class TestStallReconciliation:

    def test_stall_events_sum_to_per_thread_stats(self):
        """The telemetry stream's per-thread stall cycles must equal each
        thread's FrontEndStats exactly — miss events against
        ``fetch_stall_cycles``, resteer events against
        ``mispredict_stall_cycles``."""
        telemetry = Telemetry(EventTrace(limit=500_000))
        machine = SMTMachine([_loop(1200), _stream(10_000)],
                             build_icache("conv32"), telemetry=telemetry)
        result = machine.run([(400, 8000), (400, 8000)])
        threads = _threads_of(result)

        sums = {0: {"miss": 0, "resteer": 0}, 1: {"miss": 0, "resteer": 0}}
        for e in telemetry.recorder.of_kind(STALL):
            cause = e.fields["cause"]
            if cause in ("miss", "resteer"):
                sums[e.fields["thread"]][cause] += e.fields["cycles"]
        for tid in (0, 1):
            frontend = threads[tid]["frontend"]
            assert sums[tid]["miss"] == frontend["fetch_stall_cycles"]
            assert sums[tid]["resteer"] == \
                frontend["mispredict_stall_cycles"]


class TestSMTWorkloadNames:

    def test_parse_basic(self):
        wl = get_workload("smt:server_000+client_000")
        assert isinstance(wl, SMTWorkload)
        assert wl.components == ("server_000", "client_000")
        assert wl.policy == "rr"
        assert wl.family == "smt"

    def test_parse_policy_suffix(self):
        wl = get_workload("smt:spec_000+spec_000@icount")
        assert wl.policy == "icount"
        assert wl.components == ("spec_000", "spec_000")

    def test_is_smt_workload(self):
        assert is_smt_workload("smt:a+b")
        assert not is_smt_workload("server_000")

    def test_component_workloads_resolve(self):
        wl = smt_workload("smt:server_000+client_000")
        names = [c.name for c in wl.component_workloads()]
        assert names == ["server_000", "client_000"]

    def test_single_component_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("smt:server_000")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("smt:server_000+client_000@lottery")

    def test_nested_smt_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("smt:smt:a+b+client_000")

    def test_generate_refuses(self):
        wl = get_workload("smt:server_000+client_000")
        with pytest.raises(ConfigurationError):
            wl.generate()


class TestInterferenceMatrix:

    @staticmethod
    def _result(ipc, thread_ipcs=None):
        extra = {}
        if thread_ipcs is not None:
            extra["threads"] = [
                {"instructions": int(t_ipc * 1000), "cycles": 1000,
                 "extra": {"thread": tid}}
                for tid, t_ipc in enumerate(thread_ipcs)
            ]
        return SimpleNamespace(ipc=ipc, extra=extra)

    def test_build_matrix_orientation(self):
        """slowdown[i][j] must divide i's solo IPC by *i's own thread*
        in the (i, j) co-run — thread 0 when i is the lower index,
        thread 1 when it is the higher."""
        from repro.experiments.smt_matrix import build_matrix

        results = {
            ("a", "conv32"): self._result(2.0),
            ("b", "conv32"): self._result(1.0),
            # a co-run with b: a keeps 1.6 IPC, b keeps 0.5.
            ("smt:a+b", "conv32"): self._result(
                2.1, thread_ipcs=(1.6, 0.5)),
            ("smt:a+a", "conv32"): self._result(
                2.0, thread_ipcs=(1.0, 1.0)),
            ("smt:b+b", "conv32"): self._result(
                1.6, thread_ipcs=(0.8, 0.8)),
        }
        matrix = build_matrix(results, ["a", "b"], "conv32")
        slowdown = matrix["slowdown"]
        assert slowdown[0][0] == pytest.approx(2.0)       # a vs a
        assert slowdown[0][1] == pytest.approx(2.0 / 1.6)  # a next to b
        assert slowdown[1][0] == pytest.approx(1.0 / 0.5)  # b next to a
        assert slowdown[1][1] == pytest.approx(1.25)       # b vs b

    def test_matrix_pairs_cover_solos_and_unordered_coruns(self):
        from repro.experiments.smt_matrix import matrix_pairs, smt_name

        pairs = matrix_pairs(["a", "b", "c"], ["conv32"])
        workloads = [w for w, _ in pairs]
        assert workloads.count("a") == 1
        assert smt_name("a", "b") in workloads
        assert smt_name("b", "a") not in workloads
        assert smt_name("a", "a") in workloads
        # 3 solos + C(3,2)+3 = 6 co-runs.
        assert len(pairs) == 9

    def test_smt_name_policy_suffix(self):
        from repro.experiments.smt_matrix import smt_name

        assert smt_name("a", "b") == "smt:a+b"
        assert smt_name("a", "b", "icount") == "smt:a+b@icount"


class TestPairing:

    #: 4 workloads where greedy-from-cheapest is optimal: pairing the
    #: two antagonists (0,1) apart is clearly best.
    MATRIX = [
        [1.1, 1.9, 1.2, 1.2],
        [1.9, 1.1, 1.2, 1.2],
        [1.2, 1.2, 1.0, 1.3],
        [1.2, 1.2, 1.3, 1.0],
    ]

    def test_pair_cost_is_symmetric_sum(self):
        assert pair_cost(self.MATRIX, 0, 1) == pytest.approx(3.8)
        assert pair_cost(self.MATRIX, 0, 1) == pair_cost(self.MATRIX, 1, 0)

    def test_contention_aware_finds_optimum(self):
        pairing = contention_aware_pairing(self.MATRIX)
        best = total_slowdown(self.MATRIX, pairing)
        # Brute force all 3 perfect matchings of 4 items.
        candidates = [[(0, 1), (2, 3)], [(0, 2), (1, 3)], [(0, 3), (1, 2)]]
        optimum = min(total_slowdown(self.MATRIX, c) for c in candidates)
        assert best == pytest.approx(optimum)
        # And the antagonists 0/1 ended up on different cores.
        assert not any(set(p) == {0, 1} for p in pairing)

    def test_local_search_escapes_greedy_trap(self):
        """A matrix built so greedy's first (cheapest) pick forces a bad
        completion; 2-opt must undo it."""
        big = 10.0
        matrix = [
            [0.0, 0.1, 0.5, big],
            [0.1, 0.0, big, 0.5],
            [0.5, big, 0.0, big],
            [big, 0.5, big, 0.0],
        ]
        greedy = greedy_pairing(matrix)
        # Greedy grabs (0,1) then is stuck with (2,3): total 2*big.
        assert total_slowdown(matrix, greedy) > big
        refined = local_search(matrix, greedy)
        assert total_slowdown(matrix, refined) == pytest.approx(2.0)

    def test_beats_or_matches_random_baseline(self):
        rng = random.Random(7)
        n = 8
        matrix = [[1.0 + rng.random() for _ in range(n)] for _ in range(n)]
        chosen = total_slowdown(matrix, contention_aware_pairing(matrix))
        baseline = random_baseline(matrix, trials=300, seed=1)
        assert chosen <= baseline + 1e-9

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            greedy_pairing([[1.0] * 3 for _ in range(3)])

    def test_random_pairing_is_perfect_matching(self):
        rng = random.Random(3)
        pairing = random_pairing(6, rng)
        used = [i for pair in pairing for i in pair]
        assert sorted(used) == list(range(6))

    def test_predictor_order_ranks_small_resident_pairs_first(self):
        features = {
            "big_a": {"footprint_kib": 400.0, "reuse_tail": 0.6},
            "big_b": {"footprint_kib": 300.0, "reuse_tail": 0.5},
            "small_a": {"footprint_kib": 8.0, "reuse_tail": 0.01},
            "small_b": {"footprint_kib": 6.0, "reuse_tail": 0.0},
        }
        names = ["big_a", "big_b", "small_a", "small_b"]
        order = predicted_cost_order(names, features)
        # Cheapest predicted pair: the two cache-resident workloads.
        assert order[0] == (2, 3)
        # Most contended: the two big-footprint streamers.
        assert order[-1] == (0, 1)
        # Seeding greedy with this order pairs small with small.
        identity = [[1.0] * 4 for _ in range(4)]
        seeded = greedy_pairing(identity, order)
        assert (2, 3) in seeded and (0, 1) in seeded
