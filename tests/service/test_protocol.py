"""Wire-protocol unit tests: framing, tolerance, pair/address parsing."""

import json

import pytest

from repro.service.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    check_pairs,
    decode,
    encode,
    error_response,
    format_address,
    ok_response,
    parse_address,
)


class TestFraming:
    def test_encode_is_one_line_with_version(self):
        line = encode({"op": "ping"})
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        message = json.loads(line)
        assert message["schema_version"] == PROTOCOL_VERSION

    def test_encode_keeps_explicit_version(self):
        message = json.loads(encode({"op": "ping", "schema_version": 99}))
        assert message["schema_version"] == 99

    def test_decode_round_trip(self):
        assert decode(encode({"op": "ping", "n": 1}))["n"] == 1

    def test_decode_tolerates_unknown_keys(self):
        line = json.dumps({"op": "ping", "future_field": {"x": 1},
                           "schema_version": PROTOCOL_VERSION + 5})
        message = decode(line)
        assert message["future_field"] == {"x": 1}

    @pytest.mark.parametrize("bad", ["not json", "[1, 2]", '"string"', ""])
    def test_decode_rejects_non_objects(self, bad):
        with pytest.raises(ProtocolError):
            decode(bad)

    def test_response_helpers(self):
        assert ok_response(x=1) == {
            "schema_version": PROTOCOL_VERSION, "ok": True, "x": 1}
        err = error_response("boom", status="failed")
        assert err["ok"] is False and err["error"] == "boom"
        assert err["status"] == "failed"


class TestCheckPairs:
    def test_accepts_lists_and_tuples(self):
        assert check_pairs([["w", "c"], ("w2", "c2")]) == \
            [("w", "c"), ("w2", "c2")]

    @pytest.mark.parametrize("bad", [
        None, [], "pairs", [["w"]], [["w", "c", "x"]], [["w", 3]],
        [["", "c"]], [{"workload": "w"}],
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ProtocolError):
            check_pairs(bad)


class TestAddresses:
    @pytest.mark.parametrize("raw,expect", [
        ("unix:/tmp/s.sock", ("unix", "/tmp/s.sock")),
        ("/tmp/s.sock", ("unix", "/tmp/s.sock")),
        ("tcp:somehost:7000", ("tcp", ("somehost", 7000))),
        ("somehost:7000", ("tcp", ("somehost", 7000))),
        (":7000", ("tcp", ("127.0.0.1", 7000))),
        ("7000", ("tcp", ("127.0.0.1", 7000))),
        ("somehost", ("tcp", ("somehost", DEFAULT_PORT))),
    ])
    def test_forms(self, raw, expect):
        assert parse_address(raw) == expect

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            parse_address("  ")

    def test_format(self):
        assert format_address("/tmp/s.sock") == "unix:/tmp/s.sock"
        assert format_address("7000") == "tcp:127.0.0.1:7000"
