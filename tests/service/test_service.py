"""In-process daemon tests: parity with the local engine, cross-client
single-flight, job lifecycle (deadlines, cancel, journal restore), span
threading and idle shutdown.

Everything runs at ``REPRO_SCALE=0.03`` on a unix socket under
``tmp_path``; daemon + client live in one process (separate threads), so
these stay tier-1 fast. Process-level behaviour (SIGTERM, kill -9) is in
``test_daemon_proc.py``.
"""

import json
import threading
import time
from pathlib import Path

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.pool import SweepEngine, estimate_key
from repro.experiments.runner import ResultCache
from repro.obs.hooks import RunObs
from repro.obs.runs import ObsRun
from repro.obs.spans import read_spans
from repro.service.client import RemoteEngine, ServiceClient, probe
from repro.service.protocol import ServiceError
from repro.service.server import ServiceServer

PAIRS = [
    ("server_000", "conv32"),
    ("server_000", "ubs"),
    ("client_000", "conv32"),
    ("client_000", "ubs"),
]

VOLATILE = ("sim_wall_seconds", "sim_cycles_per_sec", "sim_instrs_per_sec")


def _masked_results(cache: ResultCache) -> dict:
    out = {}
    for path in sorted((cache.root / "results").glob("*.json")):
        data = json.loads(path.read_text())
        for key in VOLATILE:
            data.get("extra", {}).pop(key, None)
        out[path.name] = data
    return out


def _shm_entries():
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in shm.iterdir() if not p.name.startswith("sem.")}


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.03")
    monkeypatch.setattr(runner_mod, "_default_cache", None)


@pytest.fixture
def server(tmp_path):
    srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=1,
                        cache=ResultCache(tmp_path / "cache"))
    srv.start()
    yield srv
    srv.close()


def _address(server: ServiceServer) -> str:
    return server.address


class TestRoundTrip:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_byte_identical_to_local_engine(self, tmp_path, jobs):
        """A fill through the daemon must leave the same result-cache
        bytes (modulo host timings) as a local SweepEngine fill."""
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=jobs,
                            cache=ResultCache(tmp_path / "daemon_cache"))
        srv.start()
        try:
            engine = RemoteEngine(srv.address)
            remote = engine.run(PAIRS)
            engine.close()
        finally:
            srv.close()
        local_cache = ResultCache(tmp_path / "local_cache")
        local = SweepEngine(jobs=1, cache=local_cache).run(PAIRS)

        assert engine.pairs_simulated == len(PAIRS)
        assert set(remote) == set(local) == set(PAIRS)
        for pair in PAIRS:
            assert remote[pair].cycles == local[pair].cycles
            assert remote[pair].to_dict()["frontend"] == \
                local[pair].to_dict()["frontend"]
        assert _masked_results(srv.cache) == _masked_results(local_cache)

    def test_warm_resubmit_simulates_nothing(self, server):
        first = RemoteEngine(server.address)
        first.run(PAIRS)
        first.close()
        again = RemoteEngine(server.address)
        results = again.run(PAIRS)
        again.close()
        assert again.pairs_simulated == 0
        assert set(results) == set(PAIRS)
        assert server.stats["pairs_simulated"] == len(PAIRS)

    def test_duplicate_pairs_deduped_within_job(self, server):
        engine = RemoteEngine(server.address)
        results = engine.run([PAIRS[0], PAIRS[0], PAIRS[0]])
        engine.close()
        assert engine.pairs_simulated == 1
        assert set(results) == {PAIRS[0]}

    def test_probe_and_ping(self, server):
        info = probe(server.address)
        assert info is not None
        assert info["scale"] == pytest.approx(0.03)
        assert info["jobs"] == 1
        assert probe("unix:/nonexistent/nowhere.sock") is None


class TestSingleFlight:
    def test_same_pair_from_two_clients_simulates_once(self, tmp_path):
        """Two jobs carrying the same pair, queued together, run as one
        deduplicated batch: exactly one simulation."""
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=1,
                            cache=ResultCache(tmp_path / "cache"))
        # Queue both jobs BEFORE the sim thread exists, so they are
        # provably merged into one batch (the scheduling instant every
        # concurrent submission pattern reduces to).
        sub_a = srv.handle_message(
            {"op": "submit", "pairs": [list(PAIRS[0])]})
        sub_b = srv.handle_message(
            {"op": "submit", "pairs": [list(PAIRS[0])]})
        assert sub_a["ok"] and sub_b["ok"]
        assert sub_a["job_id"] != sub_b["job_id"]
        srv.start()
        try:
            for job_id in (sub_a["job_id"], sub_b["job_id"]):
                job = srv.handle_message(
                    {"op": "wait", "job_id": job_id, "timeout": 30})["job"]
                assert job["status"] == "done"
            res_a = srv.handle_message(
                {"op": "results", "job_id": sub_a["job_id"]})["results"]
            res_b = srv.handle_message(
                {"op": "results", "job_id": sub_b["job_id"]})["results"]
        finally:
            srv.close()
        assert srv.stats["pairs_requested"] == 2
        assert srv.stats["pairs_simulated"] == 1
        assert srv.stats["jobs_done"] == 2
        key = estimate_key(*PAIRS[0])
        assert res_a[key] == res_b[key]

    def test_concurrent_clients_share_cache(self, server):
        """Racing clients over the socket: total simulations across both
        equals the number of distinct pairs."""
        errors = []

        def fill():
            try:
                engine = RemoteEngine(server.address)
                engine.run(PAIRS)
                engine.close()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=fill) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert server.stats["pairs_simulated"] == len(PAIRS)
        assert server.stats["jobs_done"] == 2


class TestValidationAndLifecycle:
    def test_unknown_workload_rejected(self, server):
        with pytest.raises(ServiceError, match="unknown workload"):
            with ServiceClient(server.address) as client:
                client.request("submit",
                               pairs=[["no_such_workload", "conv32"]])
        assert server.stats["jobs_submitted"] == 0

    def test_bad_config_rejected(self, server):
        with pytest.raises(ServiceError, match="bad config"):
            with ServiceClient(server.address) as client:
                client.request("submit",
                               pairs=[["server_000", "no_such_config"]])

    def test_scale_mismatch_rejected(self, server):
        with pytest.raises(ServiceError, match="scale mismatch"):
            with ServiceClient(server.address) as client:
                client.request("submit", pairs=[list(PAIRS[0])], scale=0.5)

    def test_unknown_op_and_job(self, server):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client.request("frobnicate")
            with pytest.raises(ServiceError, match="unknown job"):
                client.status("not-a-job")

    def test_queued_deadline_expires_unsimulated(self, tmp_path):
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=1,
                            cache=ResultCache(tmp_path / "cache"))
        # No sim thread yet: the job waits in queue past its deadline.
        sub = srv.handle_message({"op": "submit",
                                  "pairs": [list(p) for p in PAIRS],
                                  "deadline_seconds": 0.01})
        assert sub["ok"]
        time.sleep(0.05)
        srv.start()
        try:
            job = srv.handle_message(
                {"op": "wait", "job_id": sub["job_id"],
                 "timeout": 10})["job"]
        finally:
            srv.close()
        assert job["status"] == "expired"
        assert srv.stats["pairs_simulated"] == 0
        err = srv.handle_message({"op": "results", "job_id": sub["job_id"]})
        assert not err["ok"] and "expired" in err["error"]

    def test_cancel_queued_job(self, tmp_path):
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=1,
                            cache=ResultCache(tmp_path / "cache"))
        sub = srv.handle_message({"op": "submit",
                                  "pairs": [list(PAIRS[0])]})
        out = srv.handle_message({"op": "cancel", "job_id": sub["job_id"]})
        assert out["ok"] and out["job"]["status"] == "cancelled"
        # Cancelling a terminal job fails cleanly.
        again = srv.handle_message({"op": "cancel", "job_id": sub["job_id"]})
        assert not again["ok"]
        srv.start()
        srv.close()
        assert srv.stats["pairs_simulated"] == 0

    def test_draining_refuses_submits(self, server):
        server.stop("test drain")
        out = server.handle_message({"op": "submit",
                                     "pairs": [list(PAIRS[0])]})
        assert not out["ok"] and "draining" in out["error"]

    def test_shutdown_op_drains(self, tmp_path):
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=1,
                            cache=ResultCache(tmp_path / "cache"))
        srv.start()
        with ServiceClient(srv.address) as client:
            client.shutdown()
        srv.join(timeout=10)
        assert not (tmp_path / "svc.sock").exists()

    def test_idle_timeout_self_shutdown(self, tmp_path):
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=1,
                            cache=ResultCache(tmp_path / "cache"),
                            idle_timeout=0.2)
        srv.start()
        deadline = time.monotonic() + 10
        while not srv._stop_event.is_set() and time.monotonic() < deadline:
            time.sleep(0.05)
        srv.join(timeout=10)
        assert srv._draining
        assert not (tmp_path / "svc.sock").exists()

    def test_stale_socket_file_is_replaced(self, tmp_path):
        sock = tmp_path / "svc.sock"
        first = ServiceServer(f"unix:{sock}", jobs=1,
                              cache=ResultCache(tmp_path / "c1"))
        first.start()
        first.close()   # unlinks; recreate a stale file by hand
        sock.touch()
        second = ServiceServer(f"unix:{sock}", jobs=1,
                               cache=ResultCache(tmp_path / "c2"))
        second.start()
        try:
            assert probe(second.address) is not None
        finally:
            second.close()

    def test_live_socket_not_stolen(self, tmp_path, server):
        other = ServiceServer(server.address, jobs=1,
                              cache=ResultCache(tmp_path / "other"))
        with pytest.raises(ServiceError, match="already served"):
            other.start()
        assert probe(server.address) is not None


class TestJournalRestore:
    def test_restarted_daemon_serves_done_results(self, tmp_path):
        """A daemon built on a dead daemon's state dir answers
        ``results`` for journaled done jobs from the cache — zero
        resimulation."""
        sock = tmp_path / "svc.sock"
        cache_root = tmp_path / "cache"
        first = ServiceServer(f"unix:{sock}", jobs=1,
                              cache=ResultCache(cache_root))
        first.start()
        engine = RemoteEngine(first.address)
        engine.run(PAIRS)
        engine.close()
        with ServiceClient(first.address) as client:
            job_id = client.submit(PAIRS)
            client.wait_slice(job_id)
        first.close()

        second = ServiceServer(f"unix:{sock}", jobs=1,
                               cache=ResultCache(cache_root))
        second.start()
        try:
            with ServiceClient(second.address) as client:
                assert client.status(job_id)["status"] == "done"
                results = client.results(job_id)
        finally:
            second.close()
        assert set(results) == {estimate_key(*p) for p in PAIRS}
        assert second.stats["pairs_simulated"] == 0

    def test_unfinished_job_resurfaces_as_lost(self, tmp_path):
        state = tmp_path / "state"
        first = ServiceServer(f"unix:{tmp_path / 'a.sock'}", jobs=1,
                              cache=ResultCache(tmp_path / "cache"),
                              state_dir=str(state))
        # Journal a submit with no matching done (daemon died mid-job).
        sub = first.handle_message({"op": "submit",
                                    "pairs": [list(PAIRS[0])]})
        second = ServiceServer(f"unix:{tmp_path / 'b.sock'}", jobs=1,
                               cache=ResultCache(tmp_path / "cache"),
                               state_dir=str(state))
        job = second.handle_message(
            {"op": "status", "job_id": sub["job_id"]})["job"]
        assert job["status"] == "lost"
        err = second.handle_message(
            {"op": "results", "job_id": sub["job_id"]})
        assert not err["ok"]


class TestSpanThreading:
    def test_daemon_pair_spans_join_client_trace(self, tmp_path):
        """With a client-side RunObs, server-side pair spans land in the
        client's spans.jsonl, parented under the client's sweep span —
        the same tree shape a local run produces."""
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=1,
                            cache=ResultCache(tmp_path / "cache"))
        srv.start()
        obs = RunObs(ObsRun(tmp_path / "obs", "run_all"))
        try:
            engine = RemoteEngine(srv.address, obs=obs)
            engine.run(PAIRS)
            engine.close()
        finally:
            obs.finish()
            srv.close()
        spans = read_spans(obs.run.dir / "spans.jsonl")
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["sweep"]) == 1
        sweep = by_name["sweep"][0]
        pair_spans = by_name["pair"]
        assert len(pair_spans) == len(PAIRS)
        assert all(s["parent_span_id"] == sweep["span_id"]
                   for s in pair_spans)
        assert all(s["trace_id"] == sweep["trace_id"] for s in pair_spans)
        # The daemon recorded them (different thread, same pid here, but
        # the attributes carry the pair identity).
        keys = {s["attributes"]["key"] for s in pair_spans}
        assert keys == {estimate_key(*p) for p in PAIRS}

    def test_warm_run_emits_no_sweep_span(self, tmp_path):
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=1,
                            cache=ResultCache(tmp_path / "cache"))
        srv.start()
        try:
            warmup = RemoteEngine(srv.address)
            warmup.run(PAIRS)
            warmup.close()
            obs = RunObs(ObsRun(tmp_path / "obs", "run_all"))
            engine = RemoteEngine(srv.address, obs=obs)
            engine.run(PAIRS)
            engine.close()
            obs.finish()
        finally:
            srv.close()
        names = {s["name"]
                 for s in read_spans(tmp_path / "obs" / "spans.jsonl")}
        assert "sweep" not in names and "pair" not in names


class TestHygiene:
    def test_daemon_lifecycle_leaves_no_shm(self, tmp_path):
        before = _shm_entries()
        srv = ServiceServer(f"unix:{tmp_path / 'svc.sock'}", jobs=2,
                            cache=ResultCache(tmp_path / "cache"))
        srv.start()
        try:
            engine = RemoteEngine(srv.address)
            # Two sweeps over one workload: the second runs with the
            # trace already on disk, so segments get published and must
            # be reclaimed by close().
            engine.run([("server_000", "conv32"), ("server_000", "ubs")])
            engine.run([("server_000", "conv64"),
                        ("server_000", "small16")])
            engine.close()
        finally:
            srv.close()
        assert _shm_entries() == before
