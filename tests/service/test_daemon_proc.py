"""Process-level daemon tests: SIGTERM drain and kill -9 restart.

These spawn ``python -m repro.service serve`` as a real subprocess (its
own interpreter, signal handling, exit code), so they cover exactly what
the in-process tests cannot: delivery of real signals and recovery from
an unclean death.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.pool import estimate_key
from repro.service.client import ServiceClient, probe

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

DRAIN_PAIRS = [
    (workload, config)
    for workload in ("server_000", "client_000")
    for config in ("conv32", "ubs", "conv64", "small16", "small32",
                   "distill32")
]


def _spawn_daemon(tmp_path: Path, sock: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["REPRO_SCALE"] = "0.03"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--socket", str(sock), "--jobs", "1", "--idle-timeout", "120"],
        env=env, cwd=str(tmp_path),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 30
    while probe(f"unix:{sock}") is None:
        if time.monotonic() > deadline or process.poll() is not None:
            out = process.stdout.read().decode(errors="replace") \
                if process.stdout else ""
            pytest.fail(f"daemon did not come up:\n{out}")
        time.sleep(0.1)
    return process


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    # The *client* side of these tests must agree on the scale the
    # daemon subprocess is pinned to.
    monkeypatch.setenv("REPRO_SCALE", "0.03")


def test_sigterm_drains_in_flight_job(tmp_path):
    """SIGTERM mid-job: the daemon finishes every accepted pair, then
    exits 0; nothing is abandoned half-simulated."""
    sock = tmp_path / "svc.sock"
    process = _spawn_daemon(tmp_path, sock)
    try:
        with ServiceClient(f"unix:{sock}") as client:
            job_id = client.submit(DRAIN_PAIRS)
        time.sleep(0.1)          # let the batch start
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=120)
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup
            process.kill()
            process.wait()
    assert code == 0
    assert not sock.exists()

    # Every pair of the accepted job made it into the result cache, and
    # the journal closed the job out as done.
    results_dir = tmp_path / "cache" / "results"
    assert len(list(results_dir.glob("*.json"))) == len(DRAIN_PAIRS)
    journal = (tmp_path / "cache" / "service" / "jobs.jsonl").read_text()
    assert f'"job_id": "{job_id}", "kind": "submit"' in journal
    assert f'"job_id": "{job_id}", "kind": "done"' in journal


def test_kill_dash_nine_then_restart_serves_from_journal(tmp_path):
    """SIGKILL after a job completed: a restarted daemon serves that
    job's results from the journal + cache with zero resimulation."""
    sock = tmp_path / "svc.sock"
    first = _spawn_daemon(tmp_path, sock)
    pairs = DRAIN_PAIRS[:4]
    try:
        with ServiceClient(f"unix:{sock}") as client:
            job_id = client.submit(pairs)
            while client.wait_slice(job_id)["status"] in ("queued",
                                                          "running"):
                pass
    finally:
        first.kill()
        first.wait(timeout=30)

    second = _spawn_daemon(tmp_path, sock)   # stale socket file replaced
    try:
        with ServiceClient(f"unix:{sock}") as client:
            assert client.status(job_id)["status"] == "done"
            results = client.results(job_id)
            stats = client.stats()
            client.shutdown()
        code = second.wait(timeout=60)
    finally:
        if second.poll() is None:  # pragma: no cover - cleanup
            second.kill()
            second.wait()
    assert set(results) == {estimate_key(*p) for p in pairs}
    assert stats["pairs_simulated"] == 0
    assert code == 0
