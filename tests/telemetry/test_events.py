"""Event model, recorders and JSONL/CSV exporters."""

import csv

import pytest

from repro.telemetry import (
    Event,
    EventTrace,
    NULL_RECORDER,
    NullRecorder,
    STALL,
    read_jsonl,
    write_csv,
    write_jsonl,
)


class TestEvent:
    def test_record_roundtrip(self):
        e = Event(STALL, 42, cause="miss", cycles=7, pc=0x400010)
        back = Event.from_record(e.to_record())
        assert back == e
        assert back.kind == STALL and back.cycle == 42
        assert back.fields == {"cause": "miss", "cycles": 7, "pc": 0x400010}

    def test_equality_and_hash(self):
        a = Event("ftq", 1, occupancy=3)
        b = Event("ftq", 1, occupancy=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Event("ftq", 2, occupancy=3)


class TestRecorders:
    def test_null_recorder_disabled_and_silent(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.emit("stall", 0, cause="miss", cycles=1)  # no-op

    def test_event_trace_records(self):
        trace = EventTrace()
        trace.emit("stall", 5, cause="miss", cycles=2)
        trace.emit("ftq", 6, occupancy=1)
        assert len(trace) == 2
        assert [e.kind for e in trace] == ["stall", "ftq"]
        assert trace.of_kind("stall")[0].fields["cycles"] == 2

    def test_limit_drops_and_counts(self):
        trace = EventTrace(limit=2)
        for i in range(5):
            trace.emit("ftq", i, occupancy=i)
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_clear(self):
        trace = EventTrace()
        trace.emit("ftq", 0, occupancy=0)
        trace.clear()
        assert len(trace) == 0 and trace.dropped == 0

    def test_null_is_subclass(self):
        assert isinstance(NULL_RECORDER, NullRecorder)


class TestExporters:
    def events(self):
        return [
            Event("stall", 10, cause="miss", cycles=3, pc=0x400000),
            Event("ftq", 12, occupancy=7, mshr=2),
            Event("run_summary", 20, cycles=20, instructions=8),
        ]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        n = write_jsonl(self.events(), path)
        assert n == 3
        back = read_jsonl(path)
        assert back == self.events()

    def test_jsonl_roundtrip_of_recorded_trace(self, tmp_path, recorded_run):
        _, _, recorder = recorded_run
        path = tmp_path / "run.jsonl"
        write_jsonl(recorder, path)
        back = read_jsonl(path)
        assert back == recorder.events

    def test_csv_header_and_rows(self, tmp_path):
        path = tmp_path / "t.csv"
        n = write_csv(self.events(), path)
        assert n == 3
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        header = rows[0]
        assert header[:2] == ["kind", "cycle"]
        assert set(header) > {"cause", "cycles", "pc", "occupancy"}
        assert len(rows) == 4
        stall = dict(zip(header, rows[1]))
        assert stall["kind"] == "stall" and stall["cause"] == "miss"
        # Fields absent from an event are left empty.
        ftq = dict(zip(header, rows[2]))
        assert ftq["cause"] == ""

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind":"ftq","cycle":1,"occupancy":2}\n\n')
        assert read_jsonl(path) == [Event("ftq", 1, occupancy=2)]
