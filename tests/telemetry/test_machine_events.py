"""The machine emits every documented event kind with sane fields."""

import pytest

from repro import Machine, build_icache, get_workload
from repro.telemetry import (
    DRAM_ROW,
    FTQ,
    L1I,
    MSHR,
    PREDICTOR,
    RUN_SUMMARY,
    STALL,
    EventTrace,
    Telemetry,
)


class TestEventStream:
    def test_kinds_present_for_ubs(self, recorded_run):
        _, _, recorder = recorded_run
        kinds = {e.kind for e in recorder}
        for kind in (STALL, L1I, FTQ, MSHR, DRAM_ROW, PREDICTOR,
                     RUN_SUMMARY):
            assert kind in kinds, kind

    def test_exactly_one_run_summary(self, recorded_run):
        _, _, recorder = recorded_run
        assert len(recorder.of_kind(RUN_SUMMARY)) == 1

    def test_stall_fields(self, recorded_run):
        _, _, recorder = recorded_run
        stalls = recorder.of_kind(STALL)
        assert stalls
        for e in stalls:
            assert e.fields["cause"] in ("miss", "resteer", "backend")
            assert e.fields["cycles"] >= 1
            assert "pc" in e.fields

    def test_l1i_events_are_misses_by_default(self, recorded_run):
        _, _, recorder = recorded_run
        outcomes = {e.fields["result"] for e in recorder.of_kind(L1I)}
        assert "HIT" not in outcomes
        assert "FULL_MISS" in outcomes

    def test_mshr_sources(self, recorded_run):
        _, _, recorder = recorded_run
        sources = {e.fields["source"] for e in recorder.of_kind(MSHR)}
        assert sources <= {"demand", "fdip", "nextline"}
        assert "fdip" in sources

    def test_predictor_ops(self, recorded_run):
        _, _, recorder = recorded_run
        ops = {e.fields["op"] for e in recorder.of_kind(PREDICTOR)}
        assert "insert" in ops
        installs = [e for e in recorder.of_kind(PREDICTOR)
                    if e.fields["op"] == "install"]
        assert installs
        for e in installs:
            assert e.fields["way_size"] >= e.fields["run_len"]

    def test_ftq_samples(self, recorded_run):
        _, _, recorder = recorded_run
        samples = recorder.of_kind(FTQ)
        assert samples
        for e in samples:
            assert 0 <= e.fields["occupancy"] <= 128
            assert e.fields["mshr"] >= 0

    def test_record_hits_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.03")
        workload = get_workload("spec_000")
        trace = workload.generate()
        recorder = EventTrace(record_hits=True)
        machine = Machine(trace, build_icache("conv32"),
                          telemetry=Telemetry(recorder))
        machine.run(*workload.windows())
        outcomes = {e.fields["result"] for e in recorder.of_kind(L1I)}
        assert "HIT" in outcomes
