"""Shared fixtures: one small recorded simulation per session."""

import pytest

from repro import Machine, build_icache, get_workload
from repro.telemetry import EventTrace, Telemetry


def run_machine(config="ubs", telemetry=None, workload="spec_000",
                scale_monkeypatch=None):
    workload = get_workload(workload)
    trace = workload.generate()
    warmup, measure = workload.windows()
    machine = Machine(trace, build_icache(config), telemetry=telemetry)
    result = machine.run(warmup, measure)
    return machine, result


@pytest.fixture(scope="module")
def recorded_run():
    """(machine, result, recorder) of one traced small UBS run."""
    import os
    before = os.environ.get("REPRO_SCALE")
    os.environ["REPRO_SCALE"] = "0.03"
    try:
        recorder = EventTrace()
        machine, result = run_machine(telemetry=Telemetry(recorder))
    finally:
        if before is None:
            os.environ.pop("REPRO_SCALE", None)
        else:
            os.environ["REPRO_SCALE"] = before
    return machine, result, recorder
