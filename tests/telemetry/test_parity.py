"""Null recorder must not change simulation results, and a recorder-
enabled run must produce the same numbers as a plain one."""

import pytest

from repro import Machine, build_icache, get_workload
from repro.telemetry import EventTrace, StageProfiler, Telemetry


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.03")


def run(config, telemetry=None):
    workload = get_workload("server_000")
    trace = workload.generate()
    machine = Machine(trace, build_icache(config), telemetry=telemetry)
    return machine.run(*workload.windows())


def assert_same_numbers(a, b):
    assert a.cycles == b.cycles
    assert a.ipc == b.ipc
    assert a.frontend == b.frontend
    assert a.efficiency == b.efficiency
    assert a.extra == b.extra


@pytest.mark.parametrize("config", ["conv32", "ubs"])
def test_recorder_does_not_change_results(config):
    plain = run(config)
    traced = run(config, Telemetry(EventTrace()))
    assert_same_numbers(plain, traced)


def test_profiler_does_not_change_results():
    plain = run("ubs")
    profiled = run("ubs", Telemetry(profiler=StageProfiler()))
    assert_same_numbers(plain, profiled)


def test_default_telemetry_is_null():
    workload = get_workload("server_000")
    trace = workload.generate()
    machine = Machine(trace, build_icache("ubs"))
    assert machine.telemetry.recorder.enabled is False
    assert machine.telemetry.profiler is None
    assert machine._rec is None
