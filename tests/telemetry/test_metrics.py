"""MetricsRegistry instruments and component registration."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value() == 5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_set(self):
        g = MetricsRegistry().gauge("g")
        g.set(7)
        assert g.value() == 7

    def test_gauge_source(self):
        state = {"v": 1}
        reg = MetricsRegistry()
        g = reg.gauge("g", source=lambda: state["v"])
        state["v"] = 9
        assert g.value() == 9
        with pytest.raises(ConfigurationError):
            g.set(3)

    def test_histogram(self):
        h = MetricsRegistry().histogram("h")
        for v in (1, 2, 3, 100):
            h.add(v)
        assert h.count == 4 and h.total == 106
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(26.5)
        assert h.buckets() == {1: 1, 2: 2, 64: 1}
        snap = h.value()
        assert snap["count"] == 4 and "buckets" in snap


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigurationError):
            reg.gauge("a")
        with pytest.raises(ConfigurationError):
            reg.histogram("a")

    def test_snapshot_and_access(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g", source=lambda: 5)
        snap = reg.snapshot()
        assert snap == {"c": 2, "g": 5}
        assert "c" in reg and len(reg) == 2
        assert reg.names() == ["c", "g"]
        assert isinstance(reg["c"], Counter)
        kinds = {m.kind for m in reg}
        assert kinds == {"counter", "gauge"}
        assert isinstance(reg["g"], Gauge)
        assert isinstance(MetricsRegistry().histogram("h"), Histogram)


class TestMachineRegistration:
    def test_machine_metrics_cover_components(self, recorded_run):
        machine, result, _ = recorded_run
        snap = machine.metrics.snapshot()
        # One namespace per component.
        for prefix in ("machine.", "frontend.", "ftq.", "mshr.", "bpu.",
                       "l1i.", "l1d.", "l2.", "l3.", "dram.",
                       "l1i.predictor."):
            assert any(name.startswith(prefix) for name in snap), prefix
        # Pull gauges read live state that matches the result counters.
        assert snap["frontend.fetch_stall_cycles"] == \
            result.frontend.fetch_stall_cycles
        assert snap["l1i.hits"] >= result.frontend.l1i_hits
        assert snap["machine.instructions_delivered"] > 0
        assert snap["ftq.capacity"] == 128
