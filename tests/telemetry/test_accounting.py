"""StallAccounting: per-cause totals, histograms, top PCs, validation."""

from repro.telemetry import Event, EventTrace, StallAccounting, write_jsonl


def synthetic_events():
    return [
        Event("stall", 10, cause="miss", cycles=4, pc=0x100),
        Event("stall", 20, cause="miss", cycles=1, pc=0x100),
        Event("stall", 30, cause="resteer", cycles=9, pc=0x200),
        Event("stall", 40, cause="backend", cycles=2, pc=0x300),
        Event("ftq", 50, occupancy=1),  # ignored
        Event("run_summary", 60, cycles=100, instructions=50,
              fetch_stall_cycles=5, mispredict_stall_cycles=9),
    ]


class TestSynthetic:
    def test_cause_totals(self):
        acct = StallAccounting.from_events(synthetic_events())
        assert acct.cause_cycles["miss"] == 5
        assert acct.cause_cycles["resteer"] == 9
        assert acct.cause_cycles["backend"] == 2
        assert acct.total_stall_cycles == 16
        assert acct.cause_events["miss"] == 2

    def test_interval_histogram(self):
        acct = StallAccounting.from_events(synthetic_events())
        assert acct.interval_histogram("miss") == {4: 1, 1: 1}
        assert acct.interval_histogram("resteer") == {8: 1}

    def test_top_pcs(self):
        acct = StallAccounting.from_events(synthetic_events())
        top = acct.top_pcs(2)
        assert top[0] == (0x200, 9)
        assert top[1] == (0x100, 5)

    def test_validation_passes(self):
        acct = StallAccounting.from_events(synthetic_events())
        assert acct.validate_against_summary() == {}

    def test_validation_catches_mismatch(self):
        events = synthetic_events()
        events[-1] = Event("run_summary", 60, cycles=100,
                           fetch_stall_cycles=999,
                           mispredict_stall_cycles=9)
        acct = StallAccounting.from_events(events)
        assert acct.validate_against_summary() == {"miss": (5, 999)}

    def test_format_mentions_causes(self):
        text = StallAccounting.from_events(synthetic_events()).format()
        for token in ("miss", "resteer", "backend", "top", "match"):
            assert token in text

    def test_from_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(synthetic_events(), path)
        acct = StallAccounting.from_jsonl(path)
        assert acct.cause_cycles["miss"] == 5


class TestRealRun:
    def test_totals_match_frontend_counters(self, recorded_run):
        """The acceptance criterion: event sums == FrontEndStats exactly."""
        _, result, recorder = recorded_run
        acct = StallAccounting.from_events(recorder)
        fe = result.frontend
        assert acct.cause_cycles["miss"] == fe.fetch_stall_cycles
        assert acct.cause_cycles["resteer"] == fe.mispredict_stall_cycles
        assert (acct.cause_cycles["miss"] + acct.cause_cycles["resteer"]
                == fe.fetch_stall_cycles + fe.mispredict_stall_cycles)
        assert acct.validate_against_summary() == {}

    def test_summary_present(self, recorded_run):
        _, result, recorder = recorded_run
        acct = StallAccounting.from_events(recorder)
        assert acct.summary is not None
        assert acct.summary["cycles"] == result.cycles
        assert acct.summary["instructions"] == result.instructions
