"""StageProfiler wrapping, reporting and machine integration."""

import pytest

from repro import Machine, build_icache, get_workload
from repro.telemetry import StageProfiler, Telemetry
from repro.telemetry.profiler import ProfileReport


class TestProfiler:
    def test_wrap_times_and_counts(self):
        prof = StageProfiler()
        calls = []
        fn = prof.wrap("stage", lambda x: calls.append(x) or x + 1)
        assert fn(1) == 2
        assert fn(5) == 6
        assert prof.stage_calls["stage"] == 2
        assert prof.stage_seconds["stage"] >= 0.0

    def test_wrap_charges_time_on_exception(self):
        prof = StageProfiler()

        def boom():
            raise ValueError("x")

        wrapped = prof.wrap("s", boom)
        with pytest.raises(ValueError):
            wrapped()
        assert prof.stage_calls["s"] == 1

    def test_report_throughput(self):
        prof = StageProfiler()
        prof.wall_seconds = 2.0
        prof.stage_seconds["bpu"] = 0.5
        report = prof.report(cycles=1000, instructions=400)
        assert report.cycles_per_sec == pytest.approx(500.0)
        assert report.instrs_per_sec == pytest.approx(200.0)
        assert report.other_seconds == pytest.approx(1.5)
        assert report.to_dict()["cycles_per_sec"] == pytest.approx(500.0)

    def test_zero_wall_report(self):
        report = ProfileReport(wall_seconds=0.0)
        assert report.cycles_per_sec == 0.0
        assert report.instrs_per_sec == 0.0

    def test_format_lists_stages(self):
        prof = StageProfiler()
        prof.wall_seconds = 1.0
        prof.stage_seconds.update({"bpu": 0.2, "custom": 0.1})
        prof.stage_calls.update({"bpu": 10, "custom": 5})
        text = prof.report(cycles=10, instructions=5).format()
        assert "bpu" in text and "custom" in text
        assert "cycles/s" in text


class TestMachineIntegration:
    def test_profiled_run_times_every_stage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.03")
        workload = get_workload("spec_000")
        trace = workload.generate()
        prof = StageProfiler()
        machine = Machine(trace, build_icache("ubs"),
                          telemetry=Telemetry(profiler=prof))
        machine.run(*workload.windows())
        report = machine.profile_report()
        assert report is not None
        for stage in ("fills", "bpu", "fdip", "fetch", "backend"):
            assert report.stage_calls.get(stage, 0) > 0, stage
        assert report.wall_seconds > 0
        assert report.cycles == machine.cycle
        assert report.cycles_per_sec > 0
        assert machine.wall_seconds > 0

    def test_unprofiled_machine_has_no_report(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.03")
        workload = get_workload("spec_000")
        machine = Machine(workload.generate(), build_icache("conv32"))
        machine.run(*workload.windows())
        assert machine.profile_report() is None
        assert machine.wall_seconds > 0
