"""Shared fixtures for the test suite.

Heavy machine-level tests use small synthetic programs (not the full
workload suite) so the whole suite stays fast on one core.
"""

from __future__ import annotations

import pytest

from repro.trace.synthesis import ProgramBuilder, SynthesisSpec, TraceWalker


def small_spec(**overrides) -> SynthesisSpec:
    base = dict(
        name="test_small",
        seed=42,
        n_functions=60,
        n_entry_points=8,
        units_per_function_mean=4.0,
        hot_block_instrs_mean=4.0,
        p_unit_cold=0.35,
        p_unit_call=0.18,
        p_unit_vcall=0.02,
        data_footprint=64 << 10,
    )
    base.update(overrides)
    return SynthesisSpec(**base)


@pytest.fixture(scope="session")
def tiny_program():
    return ProgramBuilder(small_spec()).build()


@pytest.fixture(scope="session")
def tiny_trace(tiny_program):
    spec = small_spec()
    return TraceWalker(tiny_program, spec).run(30_000)


@pytest.fixture(scope="session")
def pressure_trace():
    """A trace that genuinely thrashes a 32 KB L1-I."""
    spec = small_spec(name="test_pressure", seed=7, n_functions=700,
                      n_entry_points=48, shared_fraction=0.25)
    program = ProgramBuilder(spec).build()
    return TraceWalker(program, spec).run(60_000)
