"""Cross-module property-based tests (hypothesis).

These drive the full front-end with randomly parameterised synthetic
programs and check the invariants that must hold regardless of workload.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu.machine import Machine, build_icache
from repro.frontend.bpu import BranchPredictionUnit
from repro.frontend.ftq import RangeBuilder
from repro.trace.record import validate_trace
from repro.trace.synthesis import ProgramBuilder, SynthesisSpec, TraceWalker


@st.composite
def specs(draw):
    # Draw raw unit weights and normalise so their sum stays below 1.
    cold = draw(st.floats(0.1, 0.45))
    call = draw(st.floats(0.05, 0.25))
    vcall = draw(st.floats(0.0, 0.04))
    loop = draw(st.floats(0.0, 0.2))
    ifelse = draw(st.floats(0.05, 0.2))
    straight = draw(st.floats(0.0, 0.1))
    total = cold + call + vcall + loop + ifelse + straight
    scale = min(1.0, 0.95 / total)
    return SynthesisSpec(
        name="prop",
        seed=draw(st.integers(0, 10_000)),
        isa=draw(st.sampled_from(["fixed4", "variable"])),
        n_functions=draw(st.integers(20, 120)),
        n_entry_points=draw(st.integers(2, 10)),
        units_per_function_mean=draw(st.floats(3.0, 7.0)),
        hot_block_instrs_mean=draw(st.floats(2.5, 8.0)),
        p_unit_cold=cold * scale,
        p_unit_call=call * scale,
        p_unit_vcall=vcall * scale,
        p_unit_loop=loop * scale,
        p_unit_ifelse=ifelse * scale,
        p_unit_straight=straight * scale,
        loop_trips_mean=draw(st.floats(2.0, 20.0)),
        zipf_alpha=draw(st.floats(0.3, 1.2)),
    )


class TestGeneratorProperties:
    @given(spec=specs())
    @settings(max_examples=15, deadline=None)
    def test_traces_always_control_flow_continuous(self, spec):
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(4000)
        validate_trace(trace)

    @given(spec=specs())
    @settings(max_examples=10, deadline=None)
    def test_fetch_ranges_partition_any_trace(self, spec):
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(3000)
        builder = RangeBuilder(trace, BranchPredictionUnit())
        delivered = 0
        while not builder.exhausted:
            fr = builder.build_next()
            if fr is None:
                builder.resume()
                continue
            assert fr.first_index == delivered - 0 or fr.n_instrs == 0 \
                or fr.first_index == delivered
            delivered += fr.n_instrs
            assert fr.start >> 6 == (fr.end - 1) >> 6
        assert delivered == len(trace)


class TestMachineProperties:
    @given(spec=specs(), config=st.sampled_from(["conv32", "ubs", "small32"]))
    @settings(max_examples=8, deadline=None)
    def test_machine_finishes_and_accounts(self, spec, config):
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(6000)
        machine = Machine(trace, build_icache(config))
        result = machine.run(1500, 4000)
        assert result.instructions == 4000
        assert result.cycles >= 4000 // 4  # cannot beat the commit width
        fe = result.frontend
        assert fe.l1i_hits >= 0 and fe.l1i_misses >= 0
        assert fe.fetch_stall_cycles + fe.mispredict_stall_cycles \
            <= result.cycles

    @given(spec=specs())
    @settings(max_examples=6, deadline=None)
    def test_ubs_storage_invariants_after_real_traffic(self, spec):
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(6000)
        machine = Machine(trace, build_icache("ubs"))
        machine.run(1500, 4000)
        ubs = machine.icache
        used, stored = ubs.storage_snapshot()
        assert 0 <= used <= stored
        for set_idx in range(ubs.sets):
            for w in range(ubs.n_ways):
                tag = ubs._tags[set_idx][w]
                if tag is None:
                    continue
                start = ubs._start[set_idx][w]
                assert 0 <= start <= 64 - ubs.way_sizes[w]
                span_mask = ((1 << ubs.way_sizes[w]) - 1) << start
                assert ubs._useful[set_idx][w] & ~span_mask == 0
                assert not ubs.predictor.contains(tag)
