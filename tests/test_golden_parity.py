"""Golden-parity guard for simulator optimizations.

Hot-path optimizations (locals hoisting, cached-way lookups, telemetry
gating) must never change simulation semantics: ``SimResult.to_dict()``
has to stay bit-identical for the same workload, configuration and
``REPRO_SCALE``. The golden files under ``tests/golden/parity/`` were
recorded before the optimization pass of PR 3; this test re-simulates
each pinned (workload, config) pair and compares the full result dict —
counters, efficiency summary and extras — key for key.

Regenerate the goldens (only after an *intentional* semantics change,
together with a ``RESULTS_VERSION`` bump) with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_golden_parity.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cpu.machine import Machine, build_icache
from repro.errors import ConfigurationError
from repro.trace.arrays import ArrayTrace
from repro.trace.record import Instruction, InstrKind
from repro.trace.workloads import get_workload

GOLDEN_DIR = Path(__file__).parent / "golden" / "parity"

#: The pinned scale every golden was recorded at.
GOLDEN_SCALE = "0.05"

#: One workload per family x the two headline configurations.
GOLDEN_PAIRS = [
    ("server_000", "conv32"),
    ("server_000", "ubs"),
    ("client_000", "conv32"),
    ("client_000", "ubs"),
    ("spec_000", "conv32"),
    ("spec_000", "ubs"),
    ("google_000", "conv32"),
    ("google_000", "ubs"),
]


def _golden_path(workload: str, config: str) -> Path:
    return GOLDEN_DIR / f"{workload}__{config}__s{GOLDEN_SCALE}.json"


def _simulate(workload: str, config: str, columnar: bool = False) -> dict:
    wl = get_workload(workload)
    trace = wl.generate()
    if columnar:
        trace = ArrayTrace.from_instructions(trace)
    warmup, measure = wl.windows()
    machine = Machine(trace, build_icache(config))
    result = machine.run(warmup, measure)
    result.workload = workload
    result.config = config
    return result.to_dict()


@pytest.fixture(autouse=True)
def pinned_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", GOLDEN_SCALE)


@pytest.mark.parametrize("workload,config", GOLDEN_PAIRS)
def test_bit_identical_to_golden(workload, config):
    path = _golden_path(workload, config)
    produced = _simulate(workload, config)
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(produced, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"golden updated: {path.name}")
    assert path.exists(), (
        f"missing golden {path.name}; run with REPRO_UPDATE_GOLDENS=1"
    )
    golden = json.loads(path.read_text())
    assert produced == golden, (
        f"{workload}/{config} drifted from its pre-optimization golden — "
        "simulation semantics changed (if intentional, bump RESULTS_VERSION "
        "and regenerate with REPRO_UPDATE_GOLDENS=1)"
    )


class TestEdgeTraces:
    """Degenerate traces through the vectorized columnar paths: the
    precomputed boundary/segment machinery must agree with the scalar
    object-list walk at the extremes, not just on realistic workloads."""

    CONFIGS = ("conv32", "ubs")

    @staticmethod
    def _run(trace, config, warmup, measure):
        machine = Machine(trace, build_icache(config))
        result = machine.run(warmup, measure)
        result.workload = "edge"
        result.config = config
        return result.to_dict()

    def _assert_paths_agree(self, instrs, warmup, measure):
        for config in self.CONFIGS:
            scalar = self._run(list(instrs), config, warmup, measure)
            columnar = self._run(ArrayTrace.from_instructions(instrs),
                                 config, warmup, measure)
            assert columnar == scalar, config

    def test_empty_trace_rejected_on_both_paths(self):
        with pytest.raises(ConfigurationError, match="empty trace"):
            Machine([], build_icache("conv32"))
        with pytest.raises(ConfigurationError, match="empty trace"):
            Machine(ArrayTrace.from_instructions([]),
                    build_icache("conv32"))

    def test_single_instruction(self):
        self._assert_paths_agree(
            [Instruction(0x1000, 4, InstrKind.ALU)], 0, 1)

    def test_single_taken_branch(self):
        self._assert_paths_agree(
            [Instruction(0x1000, 4, InstrKind.JUMP, taken=True,
                         target=0x2000)], 0, 1)

    def test_all_branch_kinds(self):
        # Every instruction is a branch, cycling through every branch
        # kind; taken ones jump forward a block, the rest fall through.
        kinds = (InstrKind.BR_COND, InstrKind.JUMP, InstrKind.CALL,
                 InstrKind.RET, InstrKind.BR_IND, InstrKind.CALL_IND)
        instrs = []
        pc = 0x40_0000
        for i in range(240):
            kind = kinds[i % len(kinds)]
            taken = kind is not InstrKind.BR_COND or i % 2 == 0
            target = pc + 68 if taken else 0
            instrs.append(Instruction(pc, 4, kind, taken=taken,
                                      target=target))
            pc = target if taken else pc + 4
        self._assert_paths_agree(instrs, 40, 200)


@pytest.mark.parametrize("workload,config", GOLDEN_PAIRS)
def test_smt_solo_bit_identical_to_golden(workload, config):
    """A single-thread ``repro.smt`` run must be bit-identical to
    ``Machine.run`` on every pinned golden: the SMT cycle loop reduces
    stage by stage to the solo machine when only one hardware thread is
    live, so SMT plumbing can never perturb solo results."""
    from repro.smt import build_smt_machine

    path = _golden_path(workload, config)
    if not path.exists():
        pytest.skip(f"golden {path.name} not recorded yet")
    wl = get_workload(workload)
    trace = ArrayTrace.from_instructions(wl.generate())
    warmup, measure = wl.windows()
    machine = build_smt_machine([trace], config)
    result = machine.run([(warmup, measure)])
    result.workload = workload
    result.config = config
    produced = result.to_dict()
    golden = json.loads(path.read_text())
    assert produced == golden, (
        f"{workload}/{config} drifted between SMTMachine (solo) and the "
        "golden recorded by Machine.run — the SMT loop is no longer "
        "bit-identical in single-thread mode"
    )


@pytest.mark.parametrize("workload,config", GOLDEN_PAIRS)
def test_columnar_trace_bit_identical_to_golden(workload, config):
    """The ArrayTrace delivery/run-ahead fast paths (columnar BPU walk,
    ``Backend.accept_range_arrays``) must match the same pre-recorded
    goldens as the object-list path — the parallel sweep engine feeds
    every worker columnar traces, so any drift here would silently change
    every campaign result."""
    path = _golden_path(workload, config)
    if not path.exists():
        pytest.skip(f"golden {path.name} not recorded yet")
    produced = _simulate(workload, config, columnar=True)
    golden = json.loads(path.read_text())
    assert produced == golden, (
        f"{workload}/{config} columnar simulation drifted from the golden "
        "recorded with object-list traces — the ArrayTrace hot paths are "
        "no longer bit-identical"
    )
