"""GHRP and ACIC policy behaviour tests."""

from repro.memory.acic import ACICFilter, _ADMIT_THRESHOLD, _CONF_MAX
from repro.memory.ghrp import GHRPPolicy


class TestGHRP:
    def test_lru_fallback(self):
        g = GHRPPolicy(1, 4)
        for way in range(4):
            g.on_fill(0, way, way << 6)
        g.on_hit(0, 0, 0)
        victim = g.victim(0)
        assert victim != 0  # way 0 is MRU

    def test_training_makes_dead_blocks_victims(self):
        g = GHRPPolicy(1, 4)
        # Train the signature of address 0xAA000 as dead many times from a
        # stable history context.
        for _ in range(40):
            g._history = 0x1234
            g.on_fill(0, 0, 0xAA000)
            g.on_evict(0, 0, 0xAA000, was_reused=False)
        for way in (1, 2, 3):
            g.on_fill(0, way, (0x100 + way) << 6)
        g._history = 0x1234
        g.on_fill(0, 0, 0xAA000)   # MRU, but its signature is trained dead
        assert g.victim(0) == 0    # dead prediction overrides recency

    def test_reuse_training_protects(self):
        g = GHRPPolicy(1, 2)
        for _ in range(40):
            g._history = 0x55
            g.on_fill(0, 0, 0xBB000)
            g.on_evict(0, 0, 0xBB000, was_reused=True)
        g._history = 0x55
        g.on_fill(0, 0, 0xBB000)
        g.on_fill(0, 1, 0xCC000)
        # Neither predicted dead; LRU picks way 0 (older).
        assert g.victim(0) == 0

    def test_history_updates_on_access(self):
        g = GHRPPolicy(1, 2)
        h0 = g._history
        g.on_fill(0, 0, 0x1000)
        assert g._history != h0


class TestACIC:
    def test_initially_admits(self):
        a = ACICFilter(1, 4)
        assert a.should_admit(0x1000, 0)

    def test_dead_evictions_lower_confidence(self):
        a = ACICFilter(1, 4)
        for _ in range(_CONF_MAX + 1):
            a.on_evict(0, 0, 0x1000, was_reused=False)
        assert not a.should_admit(0x1000, 0)

    def test_observed_reuse_restores_admission(self):
        a = ACICFilter(1, 4)
        for _ in range(_CONF_MAX + 1):
            a.on_evict(0, 0, 0x1000, was_reused=False)
        assert not a.should_admit(0x1000, 0)
        # Two misses to the same block while under observation raise
        # confidence back.
        needed = _ADMIT_THRESHOLD
        for _ in range(needed + 1):
            a.note_miss(0x1000, 0)
            a.note_miss(0x1000, 0)
        assert a.should_admit(0x1000, 0)

    def test_lru_replacement(self):
        a = ACICFilter(1, 3)
        for way in range(3):
            a.on_fill(0, way, way << 6)
        a.on_hit(0, 0, 0)
        assert a.victim(0) == 1

    def test_filter_conflicts_replace_observation(self):
        a = ACICFilter(1, 4)
        block = 0x40          # block id 1
        conflicting = block + 256 * 64  # same filter slot
        a.note_miss(block, 0)
        a.note_miss(conflicting, 0)  # kicks the first out
        # A second miss on the first block is no longer a filter hit, so
        # its confidence is unchanged at default.
        conf_before = list(a._confidence)
        a.note_miss(block, 0)
        assert a._confidence == conf_before
