"""Ideal (always-hit) instruction cache tests."""

from repro.cpu.machine import Machine, build_icache
from repro.memory.ideal import IdealICache
from repro.trace.synthesis import ProgramBuilder, TraceWalker

from ..conftest import small_spec


class TestIdealCache:
    def test_always_hits(self):
        ic = IdealICache()
        for addr in (0, 0x1234, 0xFFFF_FFC0):
            assert ic.lookup(addr, 16).hit
        assert ic.misses == 0
        assert ic.hits == 3

    def test_probe_always_true(self):
        assert IdealICache().probe_range(0x4000, 64)

    def test_perfect_efficiency(self):
        used, stored = IdealICache().storage_snapshot()
        assert used == stored

    def test_config_name(self):
        assert isinstance(build_icache("ideal"), IdealICache)


class TestIdealUpperBound:
    def test_ideal_has_zero_fetch_stalls(self):
        spec = small_spec(seed=17, n_functions=500, n_entry_points=32)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(25_000)
        result = Machine(trace, build_icache("ideal")).run(5000, 18_000)
        assert result.frontend.fetch_stall_cycles == 0
        assert result.frontend.l1i_misses == 0

    def test_ideal_bounds_all_real_caches(self):
        spec = small_spec(seed=17, n_functions=500, n_entry_points=32)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(25_000)
        ideal = Machine(trace, build_icache("ideal")).run(5000, 18_000)
        for config in ("conv16", "conv32", "conv192", "ubs"):
            real = Machine(trace, build_icache(config)).run(5000, 18_000)
            assert real.ipc <= ideal.ipc + 1e-9, config
