"""Line Distillation L1-I adaptation tests."""

from repro.memory.distillation import DistillationICache
from repro.memory.icache import MissKind


class TestLOC:
    def test_basic_fill_hit(self):
        ic = DistillationICache()
        assert ic.lookup(0x1000, 16).kind == MissKind.FULL_MISS
        ic.fill(0x1000)
        assert ic.lookup(0x1000, 16).hit

    def test_loc_capacity(self):
        ic = DistillationICache(sets=4, loc_ways=2)
        # Three conflicting blocks in one set.
        addrs = [i * 4 * 64 for i in range(3)]
        for a in addrs:
            ic.fill(a)
        assert not ic.probe_range(addrs[0], 4) or True  # distilled or gone


class TestDistillation:
    def test_used_words_survive_in_woc(self):
        ic = DistillationICache(sets=4, loc_ways=1)
        ic.fill(0)
        ic.lookup(0, 8)                # words 0,1 used
        ic.fill(4 * 64)                # evicts block 0 -> distillation
        assert ic.woc_hits == 0
        assert ic.lookup(0, 8).hit     # served from the WOC
        assert ic.woc_hits == 1

    def test_unused_words_not_distilled(self):
        ic = DistillationICache(sets=4, loc_ways=1)
        ic.fill(0)
        ic.lookup(0, 8)
        ic.fill(4 * 64)
        assert not ic.lookup(32, 8).hit    # words 8,9 were never used

    def test_refill_removes_woc_words(self):
        ic = DistillationICache(sets=4, loc_ways=1)
        ic.fill(0)
        ic.lookup(0, 8)
        ic.fill(4 * 64)                # distil block 0
        ic.fill(0)                     # block 0 returns to the LOC
        assert all(k[0] != 0 for k in ic._woc[0])

    def test_woc_capacity_bounded(self):
        ic = DistillationICache(sets=2, loc_ways=1, woc_words_per_set=4)
        for i in range(6):
            addr = i * 2 * 64
            ic.fill(addr)
            ic.lookup(addr, 64)        # use all 16 words
            ic.fill((i + 100) * 2 * 64)
        assert len(ic._woc[0]) <= 4

    def test_partial_word_coverage_misses(self):
        ic = DistillationICache(sets=4, loc_ways=1)
        ic.fill(0)
        ic.lookup(0, 8)
        ic.fill(4 * 64)
        # Request spans used word 0..1 and unused word 2 -> miss.
        assert not ic.lookup(0, 12).hit


class TestSnapshot:
    def test_storage_snapshot_counts_woc(self):
        ic = DistillationICache(sets=4, loc_ways=1)
        ic.fill(0)
        ic.lookup(0, 8)
        ic.fill(4 * 64)
        used, stored = ic.storage_snapshot()
        assert stored >= 64 + 8       # new LOC line + 2 distilled words
        assert used >= 8

    def test_block_count_includes_woc_blocks(self):
        ic = DistillationICache(sets=4, loc_ways=1)
        ic.fill(0)
        ic.lookup(0, 4)
        ic.fill(4 * 64)
        assert ic.block_count() == 2  # one LOC line + one WOC-resident block
