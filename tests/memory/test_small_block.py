"""Small-block (16B/32B) L1-I baseline tests."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.icache import MissKind
from repro.memory.small_block import SmallBlockICache


class TestGeometry:
    def test_sets_for_16b(self):
        ic = SmallBlockICache(block_size=16)
        assert ic.sets == 256

    def test_sets_for_32b(self):
        ic = SmallBlockICache(block_size=32)
        assert ic.sets == 128

    def test_rejects_other_sizes(self):
        with pytest.raises(ConfigurationError):
            SmallBlockICache(block_size=8)


class TestFillBuffer:
    def test_demand_flow(self):
        ic = SmallBlockICache(block_size=16)
        res = ic.lookup(0x1000, 16)
        assert res.kind == MissKind.FULL_MISS
        ic.fill(0x1000)                      # 64B block lands in the buffer
        assert ic.lookup(0x1000, 16).hit     # promoted from the buffer
        assert ic.buffer_hits == 1
        # Now genuinely resident in the cache array:
        assert ic.lookup(0x1000, 16).hit

    def test_only_requested_chunks_promoted(self):
        ic = SmallBlockICache(block_size=16)
        ic.fill(0x1000)
        ic.lookup(0x1000, 16)    # promotes chunk [0,16)
        # Push the 64B entry out of the FIFO buffer.
        for i in range(1, ic._buffer_capacity + 1):
            ic.fill(0x1000 + i * 64)
        # Chunk [32,48) was never promoted -> miss.
        assert not ic.lookup(0x1020, 16).hit

    def test_range_spanning_chunks(self):
        ic = SmallBlockICache(block_size=16)
        ic.fill(0x1000)
        assert ic.lookup(0x1008, 16).hit     # spans two 16B blocks
        assert ic.lookup(0x1008, 16).hit

    def test_partial_residency_is_miss(self):
        ic = SmallBlockICache(block_size=16)
        ic.fill(0x1000)
        ic.lookup(0x1000, 8)
        # Range extends into a non-promoted chunk after buffer eviction.
        for i in range(1, ic._buffer_capacity + 1):
            ic.fill(0x1000 + i * 64)
        assert not ic.lookup(0x1008, 16).hit

    def test_buffer_capacity_bounded(self):
        ic = SmallBlockICache(block_size=16, buffer_entries=4)
        for i in range(10):
            ic.fill(i * 64)
        assert len(ic._buffer) == 4


class TestSnapshot:
    def test_storage_snapshot(self):
        ic = SmallBlockICache(block_size=16)
        ic.fill(0x1000)
        ic.lookup(0x1000, 16)
        used, stored = ic.storage_snapshot()
        assert stored == 16
        assert used == 16

    def test_probe_range(self):
        ic = SmallBlockICache(block_size=32)
        assert not ic.probe_range(0x2000, 16)
        ic.fill(0x2000)
        assert ic.probe_range(0x2000, 16)   # via the buffer
