"""Deeper Line-Distillation behaviours: WOC LRU, cross-set isolation."""

from repro.memory.distillation import DistillationICache


def fill_and_use(ic, block, nbytes=8):
    addr = block * ic.sets * 64 * 0 + (block << 6)
    res = ic.lookup(addr, nbytes)
    if not res.hit:
        ic.fill(addr)
        ic.lookup(addr, nbytes)


class TestWOCLRU:
    def test_woc_evicts_least_recent_words(self):
        ic = DistillationICache(sets=1, loc_ways=1, woc_words_per_set=4)
        # Distil block A's two words, then block B's two words.
        ic.fill(0 << 6)
        ic.lookup(0 << 6, 8)
        ic.fill(1 << 6)              # evicts A -> words distilled
        ic.lookup(1 << 6, 8)
        ic.fill(2 << 6)              # evicts B -> words distilled (4 total)
        assert len(ic._woc[0]) == 4
        # Touch A's words so B's become LRU, then distil 2 more.
        assert ic.lookup(0 << 6, 8).hit
        ic.lookup(2 << 6, 8)
        ic.fill(3 << 6)              # evicts C(2) -> pushes out B's words
        assert ic.lookup(0 << 6, 8).hit     # A still present
        assert not ic.lookup(1 << 6, 8).hit  # B distilled words gone

    def test_sets_do_not_interfere(self):
        ic = DistillationICache(sets=2, loc_ways=1, woc_words_per_set=2)
        ic.fill(0 << 6)             # set 0
        ic.lookup(0 << 6, 8)
        ic.fill(2 << 6)             # set 0: distil block 0
        ic.fill(1 << 6)             # set 1
        ic.lookup(1 << 6, 8)
        ic.fill(3 << 6)             # set 1: distil block 1
        assert ic.lookup(0 << 6, 8).hit
        assert ic.lookup(1 << 6, 8).hit


class TestEvictionAccounting:
    def test_byte_usage_recorded_at_distillation(self):
        ic = DistillationICache(sets=1, loc_ways=1)
        ic.fill(0)
        ic.lookup(0, 12)
        ic.fill(64)
        assert ic.byte_usage.evictions == 1
        assert ic.byte_usage.counts[12] == 1

    def test_zero_use_line_distils_nothing(self):
        ic = DistillationICache(sets=1, loc_ways=1)
        ic.fill(0)          # never read
        ic.fill(64)
        assert len(ic._woc[0]) == 0
