"""Replacement policy unit tests."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        lru = LRUPolicy(1, 4)
        for way in range(4):
            lru.on_fill(0, way, way << 6)
        lru.on_hit(0, 0, 0)
        assert lru.victim(0) == 1

    def test_fill_refreshes(self):
        lru = LRUPolicy(1, 2)
        lru.on_fill(0, 0, 0)
        lru.on_fill(0, 1, 64)
        lru.on_fill(0, 0, 128)     # way 0 refilled, now MRU
        assert lru.victim(0) == 1

    def test_candidate_restriction(self):
        lru = LRUPolicy(1, 8)
        for way in range(8):
            lru.on_fill(0, way, way << 6)
        # way 0 is globally LRU, but candidates exclude it.
        assert lru.victim(0, candidates=range(4, 8)) == 4

    def test_sets_are_independent(self):
        lru = LRUPolicy(2, 2)
        lru.on_fill(0, 0, 0)
        lru.on_fill(1, 1, 64)
        assert lru.victim(0) == 1   # untouched way in set 0
        assert lru.victim(1) == 0

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            LRUPolicy(0, 4)


class TestFIFO:
    def test_hits_do_not_refresh(self):
        fifo = FIFOPolicy(1, 3)
        for way in range(3):
            fifo.on_fill(0, way, way << 6)
        fifo.on_hit(0, 0, 0)
        assert fifo.victim(0) == 0  # still the oldest fill

    def test_fill_order(self):
        fifo = FIFOPolicy(1, 3)
        fifo.on_fill(0, 2, 0)
        fifo.on_fill(0, 0, 64)
        fifo.on_fill(0, 1, 128)
        assert fifo.victim(0) == 2


class TestRandom:
    def test_victims_within_ways(self):
        rnd = RandomPolicy(1, 4, seed=1)
        for _ in range(100):
            assert 0 <= rnd.victim(0) < 4

    def test_candidate_restriction(self):
        rnd = RandomPolicy(1, 8, seed=2)
        for _ in range(50):
            assert rnd.victim(0, candidates=[3, 5]) in (3, 5)

    def test_seeded_reproducibility(self):
        a = [RandomPolicy(1, 4, seed=9).victim(0) for _ in range(5)]
        b = [RandomPolicy(1, 4, seed=9).victim(0) for _ in range(5)]
        # same seeds -> same first draw
        assert a[0] == b[0]


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "fifo", "random", "ghrp", "acic"])
    def test_known_policies(self, name):
        policy = make_policy(name, 4, 4)
        assert policy.sets == 4 and policy.ways == 4

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown replacement"):
            make_policy("plru", 4, 4)

    def test_default_admission_is_permissive(self):
        assert make_policy("lru", 1, 1).should_admit(0, 0)
