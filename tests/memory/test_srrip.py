"""SRRIP / DRRIP replacement tests."""

import pytest

from repro.memory.cache import Cache
from repro.memory.srrip import DRRIPPolicy, SRRIPPolicy, _RRPV_MAX
from repro.params import CacheParams


class TestSRRIP:
    def test_victim_prefers_distant(self):
        p = SRRIPPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way, way << 6)
        p.on_hit(0, 2, 2 << 6)          # way 2 promoted to RRPV 0
        victim = p.victim(0)
        assert victim != 2

    def test_aging_when_no_distant(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0, 0)
        p.on_fill(0, 1, 64)
        p.on_hit(0, 0, 0)
        p.on_hit(0, 1, 64)
        # Both at RRPV 0 -> victim search must age and terminate.
        assert p.victim(0) in (0, 1)

    def test_candidate_restriction(self):
        p = SRRIPPolicy(1, 8)
        for way in range(8):
            p.on_fill(0, way, way << 6)
        assert p.victim(0, candidates=[5, 6]) in (5, 6)

    def test_scan_resistance_vs_lru(self):
        """SRRIP keeps a re-referenced block through a one-shot scan."""
        params = CacheParams(name="T", size=1024, ways=2, latency=1,
                             mshr_entries=1, replacement="srrip")
        cache = Cache(params)
        sets = cache.sets
        hot = 0
        cache.access(hot)
        cache.access(hot)                   # promoted
        # Scan: two one-shot blocks through the same set.
        cache.access(1 * sets * 64)
        cache.access(2 * sets * 64)
        assert cache.probe(hot)             # survived the scan


class TestDRRIP:
    def test_duel_sets_disjoint(self):
        p = DRRIPPolicy(64, 8)
        assert not (p._srrip_sets & p._brrip_sets)
        assert p._srrip_sets and p._brrip_sets

    def test_psel_moves_with_misses(self):
        p = DRRIPPolicy(64, 8)
        srrip_set = next(iter(p._srrip_sets))
        before = p._psel
        p.note_miss(0, srrip_set)
        assert p._psel == before - 1

    def test_insertion_depends_on_winner(self):
        p = DRRIPPolicy(64, 8)
        follower = next(s for s in range(64)
                        if s not in p._srrip_sets
                        and s not in p._brrip_sets)
        p._psel = -100     # SRRIP winning
        assert p._insertion_rrpv(0, follower) == _RRPV_MAX - 1
        p._psel = 100      # BRRIP winning: mostly distant
        values = {p._insertion_rrpv(0, follower) for _ in range(64)}
        assert _RRPV_MAX in values

    def test_through_cache(self):
        params = CacheParams(name="T", size=2048, ways=4, latency=1,
                             mshr_entries=1, replacement="drrip")
        cache = Cache(params)
        for i in range(64):
            cache.access(i * 64)
        assert cache.misses == 64


class TestConfigNames:
    @pytest.mark.parametrize("name", ["conv32_srrip", "conv32_drrip",
                                      "conv32_fifo", "conv32_random"])
    def test_buildable(self, name):
        from repro.cpu.machine import build_icache
        ic = build_icache(name)
        assert ic.params.size == 32 * 1024
