"""Conventional instruction cache tests, incl. the motivation stats."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.memory.icache import ConventionalICache, LookupResult, MissKind
from repro.params import conventional_l1i


def make(size=32 * 1024, ways=8, **kw):
    return ConventionalICache(conventional_l1i(size, ways=ways), **kw)


class TestLookup:
    def test_miss_then_fill_then_hit(self):
        ic = make()
        res = ic.lookup(0x1000, 16)
        assert res.kind == MissKind.FULL_MISS
        assert res.block_addr == 0x1000
        ic.fill(0x1000)
        assert ic.lookup(0x1000, 16).hit

    def test_block_addr_aligned(self):
        ic = make()
        res = ic.lookup(0x1037, 8)
        assert res.block_addr == 0x1000

    def test_range_must_stay_in_block(self):
        ic = make()
        with pytest.raises(SimulationError, match="crosses"):
            ic.lookup(0x1030, 32)

    def test_range_to_block_end_ok(self):
        ic = make()
        ic.fill(0x1000)
        assert ic.lookup(0x1030, 16).hit

    def test_rejects_non_64b_blocks(self):
        with pytest.raises(ConfigurationError):
            ConventionalICache(conventional_l1i(32 * 1024, block_size=32))

    def test_probe_no_side_effects(self):
        ic = make()
        assert not ic.probe_range(0x1000, 16)
        assert ic.misses == 0


class TestAccessedBits:
    def test_storage_snapshot_tracks_marks(self):
        ic = make()
        ic.fill(0x1000)
        ic.lookup(0x1000, 16)
        used, stored = ic.storage_snapshot()
        assert stored == 64
        assert used == 16
        ic.lookup(0x1010, 8)
        used, _ = ic.storage_snapshot()
        assert used == 24

    def test_overlapping_marks_not_double_counted(self):
        ic = make()
        ic.fill(0x1000)
        ic.lookup(0x1000, 16)
        ic.lookup(0x1008, 16)
        used, _ = ic.storage_snapshot()
        assert used == 24

    def test_fill_resets_bits(self):
        ic = make(size=1024, ways=2)  # 8 sets
        sets = ic.sets
        ic.fill(0)
        ic.lookup(0, 32)
        # Evict block 0 by filling the same set twice more.
        ic.fill(sets * 64)
        ic.fill(2 * sets * 64)
        ic.fill(0)
        used, _ = ic.storage_snapshot()
        assert used == 0


class TestEvictionHistogram:
    def test_eviction_records_usage(self):
        ic = make(size=1024, ways=1)  # direct-mapped, 16 sets
        sets = ic.sets
        ic.fill(0)
        ic.lookup(0, 24)
        ic.fill(sets * 64)   # evicts block 0
        assert ic.byte_usage.evictions == 1
        assert ic.byte_usage.counts[24] == 1

    def test_recording_flag_gates_histogram(self):
        ic = make(size=1024, ways=1)
        ic.recording = False
        ic.fill(0)
        ic.fill(ic.sets * 64)
        assert ic.byte_usage.evictions == 0

    def test_flush_residents(self):
        ic = make()
        ic.fill(0x1000)
        ic.lookup(0x1000, 64)
        ic.flush_residents_into_stats()
        assert ic.byte_usage.counts[64] == 1
        assert ic.block_count() == 0


class TestTouchDistance:
    def test_bytes_before_first_miss(self):
        ic = make(size=1024, ways=1, track_touch_distance=True)
        sets = ic.sets
        ic.lookup(0, 8)                  # miss #1 in set 0
        ic.fill(0)
        ic.lookup(0, 8)                  # touched at delta 0
        ic.lookup(sets * 64, 8)          # miss #2 in set 0
        ic.fill(sets * 64)               # evicts block 0
        assert ic.touch_distance.total_accessed == 8
        assert ic.touch_distance.fraction(1) == 1.0

    def test_late_touches_excluded_from_n1(self):
        ic = make(size=1024, ways=2, track_touch_distance=True)
        sets = ic.sets
        ic.lookup(0, 8)
        ic.fill(0)
        ic.lookup(0, 8)                     # 8 bytes at delta 0
        ic.lookup(sets * 64, 8)             # miss in the set
        ic.fill(sets * 64)
        ic.lookup(8, 8)                     # 8 more bytes at delta 1
        ic.lookup(sets * 64, 8)             # make the other block MRU
        ic.lookup(2 * sets * 64, 8)         # miss -> evicts LRU (block 0)
        ic.fill(2 * sets * 64)
        td = ic.touch_distance
        assert td.total_accessed == 16
        assert td.fraction(1) == pytest.approx(0.5)
        assert td.fraction(2) == pytest.approx(1.0)


class TestInvalidate:
    def test_invalidate_present(self):
        ic = make()
        ic.fill(0x2000)
        assert ic.invalidate(0x2000)
        assert not ic.probe_range(0x2000, 4)

    def test_invalidate_absent(self):
        assert not make().invalidate(0x2000)


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 1023), st.integers(1, 16)),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_used_never_exceeds_stored(self, accesses):
        ic = make(size=2048, ways=2)
        for block_idx, nbytes in accesses:
            addr = block_idx * 64 + (64 - nbytes)
            res = ic.lookup(addr, nbytes)
            if not res.hit:
                ic.fill(res.block_addr)
                ic.lookup(addr, nbytes)
        used, stored = ic.storage_snapshot()
        assert 0 <= used <= stored
        assert stored == ic.block_count() * 64

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, blocks):
        ic = make(size=1024, ways=1)
        for b in blocks:
            res = ic.lookup(b * 64, 4)
            if not res.hit:
                ic.fill(res.block_addr)
        assert ic.accesses == len(blocks)
