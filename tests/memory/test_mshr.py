"""MSHR file tests."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.memory.mshr import MSHRFile


class TestMSHR:
    def test_allocate_and_lookup(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x1000, fill_cycle=50, cycle=10)
        assert mshr.lookup(0x1000, 20) == 50

    def test_lookup_expires_completed(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x1000, 50, 10)
        assert mshr.lookup(0x1000, 50) is None   # fill landed
        assert len(mshr) == 0

    def test_full_and_expire(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x0, 100, 0)
        mshr.allocate(0x40, 200, 0)
        assert mshr.full(50)
        assert not mshr.full(150)   # first entry expired
        assert len(mshr) == 1

    def test_double_allocation_rejected(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x0, 100, 0)
        with pytest.raises(SimulationError, match="double allocation"):
            mshr.allocate(0x0, 120, 1)

    def test_overflow_rejected(self):
        mshr = MSHRFile(1)
        mshr.allocate(0x0, 100, 0)
        with pytest.raises(SimulationError, match="full"):
            mshr.allocate(0x40, 100, 0)

    def test_earliest_completion(self):
        mshr = MSHRFile(4)
        assert mshr.earliest_completion() is None
        mshr.allocate(0x0, 90, 0)
        mshr.allocate(0x40, 60, 0)
        assert mshr.earliest_completion() == 60

    def test_merge_counter(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x0, 100, 0)
        mshr.lookup(0x0, 10)
        mshr.lookup(0x0, 20)
        assert mshr.merges == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MSHRFile(0)

    def test_reset(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x0, 100, 0)
        mshr.reset()
        assert len(mshr) == 0
        assert mshr.allocations == 0
