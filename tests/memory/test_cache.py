"""Generic set-associative cache tests (L1-D/L2/L3 substrate)."""

import pytest

from repro.memory.cache import Cache
from repro.params import CacheParams


def make_cache(size=4096, ways=4, block=64, replacement="lru"):
    return Cache(CacheParams(name="T", size=size, ways=ways, latency=1,
                             mshr_entries=4, block_size=block,
                             replacement=replacement))


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.access(0x1000).hit
        assert c.access(0x1000).hit
        assert c.hits == 1 and c.misses == 1

    def test_same_block_offsets_hit(self):
        c = make_cache()
        c.access(0x1000)
        assert c.access(0x103F).hit
        assert not c.access(0x1040).hit

    def test_probe_has_no_side_effects(self):
        c = make_cache()
        assert not c.probe(0x1000)
        assert c.misses == 0
        c.access(0x1000)
        assert c.probe(0x1000)

    def test_eviction_on_conflict(self):
        c = make_cache(size=1024, ways=2)  # 8 sets
        sets = c.sets
        base = 0x0
        # Three blocks mapping to the same set with 2 ways.
        addrs = [base + i * sets * 64 for i in range(3)]
        for a in addrs:
            result = c.access(a)
        assert result.evicted == addrs[0]
        assert not c.probe(addrs[0])
        assert c.probe(addrs[1]) and c.probe(addrs[2])

    def test_lru_order_respected(self):
        c = make_cache(size=1024, ways=2)
        sets = c.sets
        a, b, d = (i * sets * 64 for i in range(3))
        c.access(a)
        c.access(b)
        c.access(a)       # refresh a
        c.access(d)       # should evict b
        assert c.probe(a) and not c.probe(b)

    def test_invalidate(self):
        c = make_cache()
        c.access(0x2000)
        assert c.invalidate(0x2000)
        assert not c.probe(0x2000)
        assert not c.invalidate(0x2000)

    def test_fill_merged_is_noop(self):
        c = make_cache()
        c.fill(0x3000)
        assert c.fill(0x3000) is None

    def test_reset_stats(self):
        c = make_cache()
        c.access(0)
        c.reset_stats()
        assert c.accesses == 0


class TestGeometry:
    def test_sets_computed(self):
        c = make_cache(size=32 * 1024, ways=8)
        assert c.sets == 64

    def test_different_blocks_same_set(self):
        c = make_cache(size=1024, ways=2)
        a = 0
        b = c.sets * 64
        assert c.set_of(a) == c.set_of(b)
        assert c.block_of(a) != c.block_of(b)
