"""DRAM timing model tests."""

from repro.memory.dram import DRAM
from repro.params import DramParams


class TestRowBuffer:
    def test_row_miss_then_hit(self):
        dram = DRAM()
        p = dram.params
        first = dram.access(0x10000, cycle=0)
        assert first >= p.row_miss_latency
        second = dram.access(0x10000 + 64, cycle=1000)
        assert second == p.row_hit_latency
        assert dram.row_hits == 1 and dram.row_misses == 1

    def test_row_conflict(self):
        dram = DRAM()
        p = dram.params
        addr_a = 0
        addr_b = p.row_size * p.banks  # same bank, different row
        dram.access(addr_a, 0)
        latency = dram.access(addr_b, 1000)
        assert latency >= p.row_miss_latency

    def test_different_banks_independent(self):
        dram = DRAM()
        p = dram.params
        dram.access(0, 0)
        dram.access(p.row_size, 1000)          # bank 1
        assert dram.access(64, 2000) == p.row_hit_latency  # bank 0 row open

    def test_channel_serialisation(self):
        dram = DRAM()
        p = dram.params
        l1 = dram.access(0, 0)
        l2 = dram.access(64, 0)       # same cycle: queues behind the first
        assert l2 >= p.row_hit_latency + p.bus_cycles

    def test_custom_params(self):
        dram = DRAM(DramParams(t_rp=10, t_rcd=10, t_cas=10, bus_cycles=2))
        assert dram.params.row_miss_latency == 32
        assert dram.params.row_hit_latency == 12

    def test_reset_stats(self):
        dram = DRAM()
        dram.access(0, 0)
        dram.reset_stats()
        assert dram.accesses == 0
