"""Bypass (read-around) buffer tests for admission-controlled fills."""

from repro.memory.icache import ConventionalICache
from repro.memory.replacement import ReplacementPolicy
from repro.params import conventional_l1i


class DenyAll(ReplacementPolicy):
    """Admission policy that bypasses everything (victimises way 0)."""

    def should_admit(self, addr, set_idx):
        return False

    def victim(self, set_idx, candidates=None):
        return 0


def make_denying():
    return ConventionalICache(conventional_l1i(1024, ways=2),
                              policy=DenyAll(8, 2))


class TestBypassBuffer:
    def test_bypassed_fill_served_from_buffer(self):
        ic = make_denying()
        assert not ic.lookup(0x1000, 8).hit
        ic.fill(0x1000)
        assert ic.block_count() == 0          # not in the array...
        assert ic.lookup(0x1000, 8).hit       # ...but served read-around

    def test_buffer_is_fifo_bounded(self):
        ic = make_denying()
        for i in range(6):
            ic.fill(i * 64)
        assert not ic.lookup(0, 8).hit        # oldest pushed out
        assert ic.lookup(5 * 64, 8).hit

    def test_probe_range_sees_buffer(self):
        ic = make_denying()
        ic.fill(0x2000)
        assert ic.probe_range(0x2000, 16)

    def test_duplicate_fill_not_duplicated(self):
        ic = make_denying()
        ic.fill(0x1000)
        ic.fill(0x1000)
        assert ic._bypass.count(0x1000 >> 6) == 1

    def test_admitting_cache_never_uses_buffer(self):
        ic = ConventionalICache(conventional_l1i(1024, ways=2))
        ic.lookup(0x1000, 8)
        ic.fill(0x1000)
        assert not ic._bypass
        assert ic.block_count() == 1


class TestReuseSignal:
    def test_first_burst_is_not_reuse(self):
        ic = ConventionalICache(conventional_l1i(1024, ways=2))
        ic.fill(0)
        ic.lookup(0, 16)
        ic.lookup(16, 16)        # contiguous fresh bytes
        assert not ic._reused[0][0]

    def test_refetching_same_bytes_is_reuse(self):
        ic = ConventionalICache(conventional_l1i(1024, ways=2))
        ic.fill(0)
        ic.lookup(0, 16)
        ic.lookup(0, 16)         # revisit
        assert ic._reused[0][0]

    def test_partial_overlap_counts_as_reuse(self):
        ic = ConventionalICache(conventional_l1i(1024, ways=2))
        ic.fill(0)
        ic.lookup(0, 16)
        ic.lookup(8, 16)         # overlaps [8,16)
        assert ic._reused[0][0]
