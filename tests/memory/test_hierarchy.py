"""Memory hierarchy composition tests."""

from repro.memory.hierarchy import MemoryHierarchy
from repro.params import MachineParams


class TestInstructionPath:
    def test_l2_hit_latency(self):
        h = MemoryHierarchy()
        h.l2.fill(0x4000)
        assert h.fetch_block(0x4000, 0) == h.l2.params.latency

    def test_l3_hit_fills_l2(self):
        h = MemoryHierarchy()
        h.l3.fill(0x4000)
        latency = h.fetch_block(0x4000, 0)
        assert latency == h.l2.params.latency + h.l3.params.latency
        assert h.l2.probe(0x4000)

    def test_dram_path_fills_both(self):
        h = MemoryHierarchy()
        latency = h.fetch_block(0x4000, 0)
        assert latency > h.l2.params.latency + h.l3.params.latency
        assert h.l2.probe(0x4000) and h.l3.probe(0x4000)
        assert h.dram.accesses == 1

    def test_second_fetch_hits_l2(self):
        h = MemoryHierarchy()
        h.fetch_block(0x4000, 0)
        assert h.fetch_block(0x4000, 100) == h.l2.params.latency


class TestDataPath:
    def test_l1d_hit(self):
        h = MemoryHierarchy()
        h.l1d.fill(0x8000)
        assert h.data_access(0x8000, 0) == h.l1d.params.latency

    def test_load_miss_fills_l1d(self):
        h = MemoryHierarchy()
        latency = h.data_access(0x8000, 0)
        assert latency > h.l1d.params.latency
        assert h.l1d.probe(0x8000)

    def test_store_does_not_wait_for_fill(self):
        h = MemoryHierarchy()
        latency = h.data_access(0x8000, 0, is_store=True)
        assert latency == h.l1d.params.latency
        assert h.l1d.probe(0x8000)   # write-allocate happened in background

    def test_instruction_and_data_share_l2(self):
        h = MemoryHierarchy()
        h.data_access(0xA000, 0)
        assert h.fetch_block(0xA000, 100) == h.l2.params.latency

    def test_reset_stats(self):
        h = MemoryHierarchy()
        h.fetch_block(0, 0)
        h.data_access(64, 0)
        h.reset_stats()
        assert h.l2.accesses == 0
        assert h.dram.accesses == 0
        assert h.instr_fetches == 0

    def test_custom_params(self):
        params = MachineParams()
        h = MemoryHierarchy(params)
        assert h.l3.params.size == 2 * 1024 * 1024
