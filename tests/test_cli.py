"""CLI tests."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "server_001" in out
        assert "google_000" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out and "Table IV" in out
        assert "2.46" in out

    def test_run(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["run", "spec_000", "conv32"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "MPKI" in out

    def test_compare(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["compare", "spec_000", "conv32", "ubs"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            main(["run", "not_a_workload"])
