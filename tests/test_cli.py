"""CLI tests."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "server_001" in out
        assert "google_000" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out and "Table IV" in out
        assert "2.46" in out

    def test_run(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["run", "spec_000", "conv32"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "MPKI" in out

    def test_compare(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["compare", "spec_000", "conv32", "ubs"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            main(["run", "not_a_workload"])


class TestTelemetryCLI:
    @pytest.fixture(autouse=True)
    def small_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")

    def test_run_json(self, capsys):
        import json
        assert main(["run", "spec_000", "conv32", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "spec_000"
        assert payload["config"] == "conv32"
        assert payload["schema_version"] >= 2
        assert payload["cycles"] > 0

    def test_run_trace_and_report(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "spec_000", "ubs",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert trace.exists()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "stall cycles by cause" in out
        assert "miss" in out and "resteer" in out
        assert "event totals match run summary counters" in out

    def test_report_totals_match_run(self, capsys, tmp_path):
        """Acceptance: report sums equal the run's FrontEndStats."""
        import re
        from repro.__main__ import _run_one
        from repro.telemetry import EventTrace, Telemetry
        tel = Telemetry(EventTrace())
        result, _, _ = _run_one("spec_000", "ubs", telemetry=tel)
        from repro.__main__ import _export_trace
        trace = tmp_path / "t.jsonl"
        _export_trace(tel.recorder, result, str(trace))
        main(["report", str(trace)])
        out = capsys.readouterr().out
        miss = int(re.search(r"miss\s+(\d+) cycles", out).group(1))
        resteer = int(re.search(r"resteer\s+(\d+) cycles", out).group(1))
        assert miss == result.frontend.fetch_stall_cycles
        assert resteer == result.frontend.mispredict_stall_cycles

    def test_run_trace_csv(self, capsys, tmp_path):
        trace = tmp_path / "t.csv"
        assert main(["run", "spec_000", "ubs",
                     "--trace-out", str(trace)]) == 0
        first = trace.read_text().splitlines()[0]
        assert first.startswith("kind,cycle")

    def test_run_metrics_out(self, capsys, tmp_path):
        import json
        metrics = tmp_path / "m.json"
        assert main(["run", "spec_000", "ubs",
                     "--metrics-out", str(metrics)]) == 0
        snap = json.loads(metrics.read_text())
        assert "frontend.fetch_stall_cycles" in snap
        assert "l1i.hits" in snap

    def test_run_profile(self, capsys):
        assert main(["run", "spec_000", "conv32", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cycles/s" in out
        assert "backend" in out

    def test_compare_json(self, capsys):
        import json
        assert main(["compare", "spec_000", "conv32", "ubs",
                     "--json"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert len(payloads) == 2
        assert payloads[0]["config"] == "conv32"
        assert "speedup" in payloads[1]

    def test_zero_cycle_result_prints(self, capsys):
        from repro.__main__ import _print_result
        from repro.stats.counters import SimResult
        _print_result(SimResult(workload="w", config="c",
                                instructions=0, cycles=0))
        out = capsys.readouterr().out
        assert "icache-stall" in out  # no ZeroDivisionError
