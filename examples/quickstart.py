#!/usr/bin/env python
"""Quickstart: compare a conventional 32 KB L1-I against the UBS cache.

Runs one server workload from the built-in suite on three front-end
configurations and prints the paper's headline metrics. Takes well under a
minute on a laptop.

Usage: python examples/quickstart.py [workload_name]
"""

import sys

from repro import Machine, build_icache, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "server_001"
    workload = get_workload(name)
    print(f"workload: {name} ({workload.family} family, "
          f"ISA={workload.spec.isa})")

    # Generate the trace once and reuse it across configurations.
    trace = workload.generate()
    warmup, measure = workload.windows()
    print(f"trace: {len(trace)} instructions "
          f"({warmup} warm-up + {measure} measured)\n")

    results = {}
    for config in ("conv32", "conv64", "ubs"):
        machine = Machine(trace, build_icache(config))
        results[config] = machine.run(warmup, measure)

    base = results["conv32"]
    print(f"{'config':8s} {'IPC':>6s} {'L1I MPKI':>9s} {'stall cyc':>10s} "
          f"{'speedup':>8s} {'coverage':>9s} {'efficiency':>11s}")
    for config, r in results.items():
        eff = r.efficiency.mean if r.efficiency else float("nan")
        print(f"{config:8s} {r.ipc:6.2f} {r.l1i_mpki:9.2f} "
              f"{r.frontend.fetch_stall_cycles:10d} "
              f"{r.speedup_over(base):8.3f} "
              f"{r.stall_coverage_over(base):9.1%} {eff:11.2f}")

    ubs = results["ubs"]
    print(f"\nUBS resident blocks: {ubs.extra['block_count']} vs "
          f"{base.extra['block_count']} in the conventional cache")
    partial = ubs.frontend.partial_misses
    print(f"UBS partial misses: {partial} "
          f"({partial / max(1, ubs.frontend.l1i_misses):.0%} of all misses: "
          f"{ubs.frontend.l1i_partial_missing} missing sub-block, "
          f"{ubs.frontend.l1i_partial_overrun} overruns, "
          f"{ubs.frontend.l1i_partial_underrun} underruns)")


if __name__ == "__main__":
    main()
