#!/usr/bin/env python
"""Regenerate any of the paper's tables/figures from the command line.

Thin demonstration of the :mod:`repro.experiments` API. Results are
cached under ``.repro_cache/``; the first run of a figure simulates every
(workload, configuration) pair it needs — prefill everything at once with
``python -m repro.experiments.run_all``.

Usage:
    python examples/paper_figures.py            # list available artifacts
    python examples/paper_figures.py fig10      # regenerate Figure 10
    python examples/paper_figures.py table3 fig4
"""

import sys

from repro.experiments import (
    ablations,
    fig01_byte_usage,
    fig02_storage_efficiency,
    fig04_touch_distance,
    fig07_ubs_efficiency,
    fig08_stall_coverage,
    fig09_partial_misses,
    fig10_performance,
    fig11_size_sweep,
    fig12_small_blocks,
    fig13_prior_work,
    fig15_predictor,
    fig16_way_sweep,
    sec6l_cvp,
    table3_storage,
    table4_latency,
)

ARTIFACTS = {
    "fig1": fig01_byte_usage,
    "fig2": fig02_storage_efficiency,
    "fig4": fig04_touch_distance,
    "fig7": fig07_ubs_efficiency,
    "fig8": fig08_stall_coverage,
    "fig9": fig09_partial_misses,
    "fig10": fig10_performance,
    "fig11": fig11_size_sweep,
    "fig12": fig12_small_blocks,
    "fig13": fig13_prior_work,
    "fig15": fig15_predictor,
    "fig16": fig16_way_sweep,
    "table3": table3_storage,
    "table4": table4_latency,
    "sec6l": sec6l_cvp,
    "ablations": ablations,
}


def main() -> int:
    names = [n.lower().replace("figure", "fig") for n in sys.argv[1:]]
    if not names:
        print("available artifacts:")
        for name, module in ARTIFACTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:10s} {doc}")
        return 0
    for name in names:
        module = ARTIFACTS.get(name)
        if module is None:
            print(f"unknown artifact {name!r}; run without arguments "
                  "for the list", file=sys.stderr)
            return 2
        print(module.format(module.run()))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
