#!/usr/bin/env python
"""Design-space exploration for an uneven-block-size instruction cache.

Combines the three analytical models (storage, latency, consolidation)
with short simulations to evaluate candidate way configurations — the
workflow an architect would use on top of this library to size their own
UBS-style cache.

Usage: python examples/cache_design_exploration.py
"""

from repro import Machine, UBSICache, UBSParams, get_workload
from repro.core.configs import WAY_CONFIGS
from repro.core.consolidation import consolidate_ways
from repro.core.latency import latency_report
from repro.core.storage import ubs_storage
from repro.cpu.machine import build_icache

WORKLOAD = "server_000"


def analyse(way_sizes):
    """Static properties of one way configuration."""
    storage = ubs_storage(way_sizes)
    latency = latency_report(way_sizes)
    bins = consolidate_ways(way_sizes)
    return {
        "data_bytes": sum(way_sizes),
        "total_kib": storage.total_kib,
        "physical_ways": len(bins),
        "latency_ok": latency.same_latency_as_baseline,
    }


def simulate(way_sizes, trace, warmup, measure):
    params = UBSParams(way_sizes=tuple(sorted(way_sizes)))
    machine = Machine(trace, UBSICache(params))
    return machine.run(warmup, measure)


def main() -> None:
    workload = get_workload(WORKLOAD)
    trace = workload.generate()
    warmup, measure = workload.windows()

    baseline = Machine(trace, build_icache("conv32")).run(warmup, measure)
    print(f"baseline conv-32KB on {WORKLOAD}: IPC {baseline.ipc:.3f}, "
          f"MPKI {baseline.l1i_mpki:.1f}\n")

    print(f"{'config':12s} {'#ways':>5s} {'data/set':>9s} {'total':>8s} "
          f"{'physW':>5s} {'lat=base':>8s} {'speedup':>8s} {'eff':>5s}")
    for (n_ways, cfg), sizes in sorted(WAY_CONFIGS.items()):
        label = f"{n_ways}-way c{cfg}"
        static = analyse(sizes)
        result = simulate(sizes, trace, warmup, measure)
        print(f"{label:12s} {n_ways:5d} {static['data_bytes']:7d}B "
              f"{static['total_kib']:7.2f}K {static['physical_ways']:5d} "
              f"{str(static['latency_ok']):>8s} "
              f"{result.speedup_over(baseline):8.3f} "
              f"{result.efficiency.mean:5.2f}")

    print("\nColumns: data bytes per set (budget), total storage incl. "
          "metadata, physical data ways after consolidation, whether the "
          "access latency stays at the baseline's, speedup over conv-32KB, "
          "mean storage efficiency.")


if __name__ == "__main__":
    main()
