#!/usr/bin/env python
"""Bring-your-own workload: synthesise, persist and simulate a trace.

Shows the full trace workflow of the library:

1. describe a program with :class:`SynthesisSpec` (a microservice-like
   binary with heavy hot/cold interleaving),
2. generate an instruction trace and save it in the binary trace format,
3. load it back and run it through two L1-I organisations,
4. plug a custom replacement policy into the conventional cache.

Usage: python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import ConventionalICache, Machine, build_icache
from repro.memory.replacement import ReplacementPolicy
from repro.params import conventional_l1i
from repro.trace.io import read_trace, write_trace
from repro.trace.record import validate_trace
from repro.trace.synthesis import SynthesisSpec, generate_trace

WARMUP, MEASURE = 20_000, 60_000


class LIPPolicy(ReplacementPolicy):
    """LRU-Insertion Policy: fills enter at LRU, promoted only on hit.

    A 20-line example of extending the replacement interface.
    """

    def __init__(self, sets, ways):
        super().__init__(sets, ways)
        self._clock = 0
        self._stamp = [[0] * ways for _ in range(sets)]

    def on_hit(self, set_idx, way, addr):
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_fill(self, set_idx, way, addr):
        self._stamp[set_idx][way] = -self._clock  # insert at LRU

    def victim(self, set_idx, candidates=None):
        pool = range(self.ways) if candidates is None else candidates
        return min(pool, key=self._stamp[set_idx].__getitem__)


def main() -> None:
    spec = SynthesisSpec(
        name="my_microservice",
        seed=2024,
        n_functions=900,
        n_entry_points=32,
        hot_block_instrs_mean=3.5,
        p_unit_cold=0.45,
        p_unit_call=0.15,
        p_unit_vcall=0.02,
        zipf_alpha=0.6,
    )
    trace = generate_trace(spec, WARMUP + MEASURE)
    validate_trace(trace)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "my_microservice.trace.gz"
        write_trace(path, trace)
        print(f"trace: {len(trace)} instructions, "
              f"{path.stat().st_size / 1024:.0f} KiB on disk (gzip)")
        trace = read_trace(path)

    print(f"{'configuration':22s} {'IPC':>6s} {'MPKI':>6s} {'stall%':>7s}")
    rows = [
        ("conv-32KB LRU", build_icache("conv32")),
        ("conv-32KB LIP (custom)", ConventionalICache(
            conventional_l1i(32 * 1024), policy=LIPPolicy(64, 8))),
        ("UBS (Table II)", build_icache("ubs")),
    ]
    for label, icache in rows:
        result = Machine(trace, icache).run(WARMUP, MEASURE)
        stall = result.frontend.fetch_stall_cycles / result.cycles
        print(f"{label:22s} {result.ipc:6.2f} {result.l1i_mpki:6.1f} "
              f"{stall:7.1%}")


if __name__ == "__main__":
    main()
