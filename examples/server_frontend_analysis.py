#!/usr/bin/env python
"""Front-end deep dive on a server workload — the paper's motivation story.

Reproduces the Section III analysis on one workload:

1. the byte-usage CDF of cache blocks (Fig. 1),
2. storage-efficiency samples over time (Fig. 2),
3. how quickly a block's useful bytes are touched (Fig. 4),
4. where the cycles go (front-end stalls vs mispredict stalls).

Usage: python examples/server_frontend_analysis.py [workload_name]
"""

import sys

from repro import Machine, get_workload
from repro.memory.icache import ConventionalICache
from repro.params import conventional_l1i
from repro.viz import cdf_plot


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "server_005"
    workload = get_workload(name)
    trace = workload.generate()
    warmup, measure = workload.windows()

    icache = ConventionalICache(conventional_l1i(32 * 1024),
                                track_touch_distance=True)
    machine = Machine(trace, icache)
    result = machine.run(warmup, measure)
    icache.flush_residents_into_stats()

    print(f"=== {name}: baseline 32KB conventional L1-I ===\n")

    print("Cycle breakdown:")
    cycles = result.cycles
    fe = result.frontend
    print(f"  total cycles          {cycles}")
    print(f"  i-cache stall cycles  {fe.fetch_stall_cycles:8d} "
          f"({fe.fetch_stall_cycles / cycles:.1%})")
    print(f"  mispredict stalls     {fe.mispredict_stall_cycles:8d} "
          f"({fe.mispredict_stall_cycles / cycles:.1%})")
    print(f"  L1-I MPKI             {result.l1i_mpki:8.2f}")

    print("\nByte-usage CDF at eviction (Fig. 1 style):")
    cdf = icache.byte_usage.cdf()
    for bound in (4, 8, 16, 24, 32, 48, 60, 63):
        print(f"  <= {bound:2d} bytes used: {cdf[bound]:6.1%} of blocks")
    full = icache.byte_usage.counts[64] / max(1, icache.byte_usage.evictions)
    print(f"  fully used blocks: {full:6.1%}")
    print(f"  mean bytes used per 64B block: {icache.byte_usage.mean():.1f}")
    print()
    print(cdf_plot(cdf, width=65, height=6, x_label="bytes accessed",
                   y_label="fraction of blocks"))

    print("\nStorage efficiency over time (Fig. 2 style):")
    s = result.efficiency
    print(f"  mean {s.mean:.2f}  min {s.minimum:.2f}  p25 {s.p25:.2f}  "
          f"median {s.median:.2f}  p75 {s.p75:.2f}  max {s.maximum:.2f}")

    print("\nTouch distance (Fig. 4 style): accessed bytes first touched")
    for n in range(1, 5):
        frac = icache.touch_distance.fraction(n)
        print(f"  before the next {n} miss(es) in the set: {frac:.1%}")
    print("\n=> a predictor that watches a block until the next miss in its "
          "set captures nearly all of its useful bytes, which is exactly "
          "what the UBS usefulness predictor does.")


if __name__ == "__main__":
    main()
