#!/usr/bin/env python
"""Assert that a parallel prefill produces the same cache as a serial one.

Runs ``run_all``'s fill twice into throwaway caches — inline and with a
worker pool — and compares every result JSON byte-for-byte after masking
the host-timing extras (``sim_wall_seconds`` and the derived throughput
rates), which legitimately differ between runs. Any other difference
means parallel scheduling changed simulation semantics, and the script
exits 1. CI runs this at a tiny ``REPRO_SCALE`` on every push.

Usage::

    python tools/check_fill_parity.py [--jobs N] [--pairs REGEX] [--scale S]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Host-timing keys that are not part of simulation semantics.
VOLATILE_KEYS = ("sim_wall_seconds", "sim_cycles_per_sec",
                 "sim_instrs_per_sec")

#: Default CI subset: two workloads x both headline configs exercises
#: trace fan-out and per-worker memoisation without a long fill.
DEFAULT_PAIRS_REGEX = r"^(server|client)_000::(conv32|ubs)$"


def _masked_cache(root: Path) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for path in sorted((root / "results").glob("*.json")):
        data = json.loads(path.read_text())
        for key in VOLATILE_KEYS:
            data.get("extra", {}).pop(key, None)
        out[path.name] = data
    return out


def _fill(pairs, jobs: int) -> Dict[str, dict]:
    from repro.experiments.pool import SweepEngine
    from repro.experiments.runner import ResultCache

    root = Path(tempfile.mkdtemp(prefix=f"fill_parity_j{jobs}_"))
    try:
        engine = SweepEngine(jobs=jobs, cache=ResultCache(root))
        engine.run(pairs)
        print(f"  --jobs {jobs}: {engine.pairs_simulated} pairs in "
              f"{engine.fill_seconds:.2f}s", flush=True)
        leftovers = list(root.rglob("*.tmp"))
        if leftovers:
            raise SystemExit(f"leaked temp files: {leftovers}")
        return _masked_cache(root)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the parallel fill")
    parser.add_argument("--pairs", default=DEFAULT_PAIRS_REGEX,
                        help="regex over 'workload::config' selecting the "
                             "pairs to fill")
    parser.add_argument("--scale", default="0.05",
                        help="REPRO_SCALE for both fills")
    args = parser.parse_args(argv)

    os.environ["REPRO_SCALE"] = args.scale

    import re

    from repro.experiments.pool import estimate_key
    from repro.experiments.run_all import all_pairs

    pattern = re.compile(args.pairs)
    pairs = [(w, c) for w, c in all_pairs()
             if pattern.search(estimate_key(w, c))]
    if not pairs:
        print(f"no pairs match {args.pairs!r}")
        return 2
    print(f"fill parity: {len(pairs)} pairs at REPRO_SCALE={args.scale}")
    serial = _fill(pairs, jobs=1)
    parallel = _fill(pairs, jobs=args.jobs)

    if serial == parallel:
        print(f"parity ok: {len(serial)} result files identical "
              "(host-timing extras masked)")
        return 0
    for name in sorted(set(serial) ^ set(parallel)):
        side = "serial" if name in serial else "parallel"
        print(f"MISMATCH: {name} only present in the {side} fill")
    for name in sorted(set(serial) & set(parallel)):
        if serial[name] != parallel[name]:
            print(f"MISMATCH: {name} differs between fills")
    print("PARITY FAILED: parallel scheduling changed simulation results")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
