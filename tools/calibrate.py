"""Calibration harness for the synthetic workload generator.

Runs candidate specs against the baseline / 64KB / UBS caches and prints
the shape metrics the paper's figures depend on. Used during development;
not part of the published benchmarks.

Usage: python tools/calibrate.py [family ...]
"""

import sys
import time
from dataclasses import replace

from repro.cpu.machine import Machine, build_icache
from repro.trace.synthesis import ProgramBuilder, TraceWalker


def run(spec, config, warmup=50_000, measure=150_000):
    program = ProgramBuilder(spec).build()
    trace = TraceWalker(program, spec).run(warmup + measure)
    icache = build_icache(config)
    if config == "conv32":
        icache.track_touch_distance = True
    machine = Machine(trace, icache)
    result = machine.run(warmup, measure)
    result.workload = spec.name
    result.config = config
    return result, machine, program


def describe(spec, label=""):
    t0 = time.time()
    base, mbase, program = run(spec, "conv32")
    big, _, _ = run(spec, "conv64")
    ubs, mubs, _ = run(spec, "ubs")
    cold_bytes = sum(b.size for fn in program.functions for b in fn.blocks
                     if b.is_cold)
    hist = mbase.icache.byte_usage
    cdf = hist.cdf()
    print(f"== {spec.name} {label}  code={program.code_size/1024:.0f}KB "
          f"cold={cold_bytes / max(1, program.code_size):.2f} "
          f"({time.time()-t0:.0f}s)")
    print(f"  conv32: IPC {base.ipc:.2f} MPKI {base.l1i_mpki:5.1f} "
          f"stall {base.frontend.fetch_stall_cycles/base.cycles:5.1%} "
          f"mp {base.frontend.mispredict_stall_cycles/base.cycles:5.1%} "
          f"eff {base.efficiency.mean:.2f}")
    print(f"  byteCDF: <=8B {cdf[8]:.2f} <=16B {cdf[16]:.2f} "
          f"<=32B {cdf[32]:.2f} >=60B {1-cdf[59]:.2f} =64B "
          f"{hist.counts[64]/max(1,hist.evictions):.2f}")
    print(f"  conv64: speedup {big.ipc/base.ipc:5.3f} "
          f"cov {big.stall_coverage_over(base):5.1%} MPKI {big.l1i_mpki:5.1f}")
    print(f"  ubs:    speedup {ubs.ipc/base.ipc:5.3f} "
          f"cov {ubs.stall_coverage_over(base):5.1%} MPKI {ubs.l1i_mpki:5.1f} "
          f"eff {ubs.efficiency.mean:.2f} partial "
          f"{(ubs.frontend.partial_misses)/max(1,ubs.frontend.l1i_misses):.2f} "
          f"blocks {ubs.extra['block_count']}")


if __name__ == "__main__":
    from repro.trace.workloads import (_server_spec, _client_spec,
                                       _spec_spec, _google_spec)
    fams = sys.argv[1:] or ["server"]
    if "server" in fams:
        describe(_server_spec(1))
    if "client" in fams:
        describe(_client_spec(1))
    if "spec" in fams:
        describe(_spec_spec(1))
    if "google" in fams:
        describe(_google_spec(1))
