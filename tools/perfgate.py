#!/usr/bin/env python
"""Performance gate: measure simulator throughput and fail on regressions.

Times a pinned set of (workload, L1-I configuration) pairs with the real
:class:`~repro.cpu.machine.Machine` (no result cache, traces generated
in-process and reused across configurations and repeats), then writes a
``BENCH_<date>.json`` snapshot and compares it against a baseline:

* the file given with ``--baseline``, or
* the newest other ``BENCH_*.json`` at the repo root **of a comparable
  suite** — suites time different pair sets, so each lane only compares
  like-for-like: ``smoke`` falls back to the ``full`` lane (a superset
  of its pairs), ``full`` and ``smt`` only to themselves — or
* ``benchmarks/perf/baseline.json`` (the frozen pre-optimization
  baseline recorded before PR 3's hot-path work; never used for the
  ``smt`` lane, which it predates).

The ``smt`` suite times SMT co-run pairs (``smt:A+B`` workloads through
:class:`repro.smt.SMTMachine` — two hardware threads sharing the front
end) in their own suite-tagged lane, so ``repro.obs regress`` trends
them separately from the single-thread suites.

The headline metric is the geometric mean of simulated cycles per host
second across all pairs. The gate fails (exit 1) when that geomean drops
below ``(1 - tolerance)`` times the baseline's; it reports — but never
fails on — speedups.

Usage::

    python tools/perfgate.py --smoke              # quick pinned smoke set
    python tools/perfgate.py                      # full pinned suite
    python tools/perfgate.py --suite smt          # SMT co-run lane
    python tools/perfgate.py --smoke --tolerance 0.5   # lenient (CI)
    python tools/perfgate.py --smoke --out /tmp/bench.json --no-compare

Results depend on the host, so committed BENCH files are a trajectory of
one reference machine; CI should use a generous ``--tolerance``.
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import os
import platform
import resource
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Every pinned pair runs at this REPRO_SCALE (overrides the environment
#: so a stray setting cannot skew the trajectory).
PINNED_SCALE = "0.25"

#: The quick gate: one front-end-bound server workload, both headline
#: configurations.
SMOKE_PAIRS: List[Tuple[str, str]] = [
    ("server_000", "conv32"),
    ("server_000", "ubs"),
]

#: The full gate adds a loopy SPEC-like workload and the main baselines.
FULL_PAIRS: List[Tuple[str, str]] = SMOKE_PAIRS + [
    ("server_000", "small16"),
    ("server_000", "distill32"),
    ("spec_000", "conv32"),
    ("spec_000", "ubs"),
]

#: The SMT lane: one co-run pair (two threads through the shared front
#: end) on both headline configurations. Its throughput is not
#: comparable to the single-thread suites — a cycle advances two
#: architectural streams — hence the separate suite tag.
SMT_PAIRS: List[Tuple[str, str]] = [
    ("smt:server_000+client_000", "conv32"),
    ("smt:server_000+client_000", "ubs"),
]

SUITES: Dict[str, List[Tuple[str, str]]] = {
    "smoke": SMOKE_PAIRS,
    "full": FULL_PAIRS,
    "smt": SMT_PAIRS,
}

#: Which lanes a suite may take its baseline from, in preference order.
#: ``smoke`` pairs are a subset of ``full``'s, so that fallback stays
#: meaningful; nothing else crosses lanes.
BASELINE_LANES: Dict[str, Tuple[str, ...]] = {
    "smoke": ("smoke", "full"),
    "full": ("full",),
    "smt": ("smt",),
}

SCHEMA_VERSION = 1


def _null_span(*_a, **_k):
    import contextlib

    return contextlib.nullcontext()


def _measure_smt_pair(workload_name: str, config: str, traces,
                      repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` timing of one SMT co-run (``smt:A+B``) pair.

    ``traces`` is the list of component ArrayTraces in thread order.
    ``sim_cycles`` is the shared core's cycle counter — one cycle
    advances every hardware thread — so the throughput metric stays
    cycles-of-the-one-core per host second, same as the solo suites.
    """
    from repro.smt import build_smt_machine
    from repro.trace.workloads import get_workload

    wl = get_workload(workload_name)
    windows = [c.windows() for c in wl.component_workloads()]
    instructions = sum(w + m for w, m in windows)
    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        machine = build_smt_machine(list(traces), config, policy=wl.policy)
        t0 = perf_counter()
        result = machine.run(windows)
        wall = perf_counter() - t0
        sample = {
            "workload": workload_name,
            "config": config,
            "instructions": instructions,
            "sim_cycles": machine.cycle,
            "result_cycles": result.cycles,
            "wall_seconds": round(wall, 6),
            "cycles_per_sec": round(machine.cycle / wall, 1),
            "instrs_per_sec": round(instructions / wall, 1),
        }
        if best is None or sample["wall_seconds"] < best["wall_seconds"]:
            best = sample
    assert best is not None
    return best


def _measure_pair(workload_name: str, config: str, trace,
                  repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` timing of one (workload, config) simulation."""
    from repro.cpu.machine import Machine, build_icache
    from repro.trace.workloads import get_workload, is_smt_workload

    if is_smt_workload(workload_name):
        return _measure_smt_pair(workload_name, config, trace, repeats)
    wl = get_workload(workload_name)
    warmup, measure = wl.windows()
    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        machine = Machine(trace, build_icache(config))
        t0 = perf_counter()
        result = machine.run(warmup, measure)
        wall = perf_counter() - t0
        sample = {
            "workload": workload_name,
            "config": config,
            "instructions": warmup + measure,
            "sim_cycles": machine.cycle,
            "result_cycles": result.cycles,
            "wall_seconds": round(wall, 6),
            "cycles_per_sec": round(machine.cycle / wall, 1),
            "instrs_per_sec": round((warmup + measure) / wall, 1),
        }
        if best is None or sample["wall_seconds"] < best["wall_seconds"]:
            best = sample
    assert best is not None
    return best


def run_suite(pairs: List[Tuple[str, str]], repeats: int,
              obs=None) -> Dict:
    """Time every pair; traces are generated once per workload.

    Traces are handed to the machine in the columnar (ArrayTrace) form —
    the representation every production path (run_all fills, the sweep
    engine, DSE) simulates with — so the gate times the vectorized
    kernel, not the object-list compatibility path.
    """
    from repro.trace.arrays import ArrayTrace
    from repro.trace.workloads import get_workload, is_smt_workload

    span = obs.span if obs is not None else _null_span
    solo_traces: Dict[str, ArrayTrace] = {}

    def _trace(name: str) -> ArrayTrace:
        if name not in solo_traces:
            solo_traces[name] = ArrayTrace.from_instructions(
                get_workload(name).generate())
        return solo_traces[name]

    traces: Dict[str, object] = {}
    results: List[Dict[str, float]] = []
    for workload_name, config in pairs:
        if workload_name not in traces:
            if is_smt_workload(workload_name):
                # One ArrayTrace per hardware thread, components shared
                # with any solo pairs timing the same workload.
                traces[workload_name] = [
                    _trace(c)
                    for c in get_workload(workload_name).components
                ]
            else:
                traces[workload_name] = _trace(workload_name)
        print(f"  timing {workload_name} x {config} ...",
              end=" ", flush=True)
        with span("measure", key=f"{workload_name}::{config}",
                  repeats=repeats):
            sample = _measure_pair(workload_name, config,
                                   traces[workload_name], repeats)
        print(f"{sample['cycles_per_sec']:,.0f} cycles/s "
              f"({sample['wall_seconds']:.3f}s)")
        results.append(sample)

    rates = [r["cycles_per_sec"] for r in results]
    geomean = math.exp(sum(math.log(r) for r in rates) / len(rates))
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "schema_version": SCHEMA_VERSION,
        "date": datetime.date.today().isoformat(),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "repro_scale": float(PINNED_SCALE),
        "repeats": repeats,
        "peak_rss_kb": peak_rss_kb,
        "results": results,
        "geomean_cycles_per_sec": round(geomean, 1),
    }


def measure_fill(pairs: List[Tuple[str, str]],
                 jobs_list: List[int], obs=None) -> List[Dict]:
    """Time cold sweep-engine fills of ``pairs`` at each worker count.

    Every fill starts from an empty throwaway cache (so trace
    generation, scheduling and shared-memory fan-out are all on the
    clock) and is instrumented with a StageProfiler; the samples feed
    the ``fill_pairs_per_min`` campaign-throughput metric.
    """
    import shutil
    import tempfile

    from repro.experiments.pool import SweepEngine
    from repro.experiments.runner import ResultCache
    from repro.telemetry.profiler import StageProfiler

    span = obs.span if obs is not None else _null_span
    samples: List[Dict] = []
    for jobs in jobs_list:
        root = Path(tempfile.mkdtemp(prefix="perfgate_fill_"))
        try:
            profiler = StageProfiler()
            engine = SweepEngine(jobs=jobs, cache=ResultCache(root),
                                 profiler=profiler, obs=obs)
            print(f"  filling {len(pairs)} pairs with --jobs {jobs} ...",
                  end=" ", flush=True)
            with span("fill", jobs=jobs, pairs=len(pairs)):
                engine.run(pairs)
            print(f"{engine.fill_seconds:.2f}s "
                  f"({engine.pairs_per_min:.1f} pairs/min)")
            samples.append({
                "jobs": jobs,
                "pairs": engine.pairs_simulated,
                "fill_seconds": round(engine.fill_seconds, 3),
                "fill_pairs_per_min": round(engine.pairs_per_min, 1),
                "stage_seconds": {
                    k: round(v, 3)
                    for k, v in profiler.stage_seconds.items()
                },
            })
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return samples


def measure_service_fill(pairs: List[Tuple[str, str]],
                         jobs: int, obs=None) -> Dict:
    """Time one cold fill routed through an in-process daemon.

    Spins up a :class:`repro.service.ServiceServer` on a throwaway unix
    socket with a fresh cache, submits ``pairs`` through a
    :class:`~repro.service.RemoteEngine` and tears everything down. The
    delta against the same-``jobs`` local fill is the service's protocol
    + scheduling overhead; recorded for the trajectory, never gated
    (daemon wins come from *warm* reuse, which a cold one-shot
    deliberately cannot show).
    """
    import shutil
    import tempfile

    from repro.experiments.runner import ResultCache
    from repro.service import RemoteEngine, ServiceServer

    span = obs.span if obs is not None else _null_span
    root = Path(tempfile.mkdtemp(prefix="perfgate_svc_"))
    try:
        server = ServiceServer(f"unix:{root / 'svc.sock'}", jobs=jobs,
                               cache=ResultCache(root / "cache"),
                               state_dir=str(root / "state"))
        server.start()
        print(f"  filling {len(pairs)} pairs via daemon "
              f"(--jobs {jobs}) ...", end=" ", flush=True)
        try:
            engine = RemoteEngine(f"unix:{root / 'svc.sock'}")
            with span("service_fill", jobs=jobs, pairs=len(pairs)):
                engine.run(pairs)
            engine.close()
        finally:
            server.close()
        print(f"{engine.fill_seconds:.2f}s "
              f"({engine.pairs_per_min:.1f} pairs/min)")
        return {
            "jobs": jobs,
            "pairs": engine.pairs_simulated,
            "fill_seconds": round(engine.fill_seconds, 3),
            "fill_pairs_per_min": round(engine.pairs_per_min, 1),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def find_baseline(out_path: Path, explicit: Optional[str],
                  suite: str = "full") -> Optional[Path]:
    """Resolve the comparison baseline for a ``suite`` run.

    Explicit ``--baseline`` always wins. Otherwise take the newest
    committed ``BENCH_*.json`` from the first lane in
    ``BASELINE_LANES[suite]`` that has one, so lanes only ever compare
    like-for-like (the PR 7 "unknown lane" rule in ``repro.obs
    regress``, applied to the gate itself). The frozen pre-optimization
    baseline is the last resort for the single-thread lanes; the ``smt``
    lane predates nothing, so its first snapshot simply skips the gate.
    """
    if explicit:
        return Path(explicit)
    benches = sorted(
        p for p in REPO_ROOT.glob("BENCH_*.json") if p != out_path
    )
    by_suite: Dict[str, List[Path]] = {}
    for p in benches:
        try:
            tag = json.loads(p.read_text()).get("suite", "unknown")
        except (OSError, ValueError):
            continue
        by_suite.setdefault(tag, []).append(p)
    for lane in BASELINE_LANES.get(suite, (suite,)):
        if by_suite.get(lane):
            return by_suite[lane][-1]
    if suite != "smt":
        frozen = REPO_ROOT / "benchmarks" / "perf" / "baseline.json"
        if frozen.exists():
            return frozen
    return None


def compare(current: Dict, baseline: Dict, tolerance: float) -> int:
    """Print the per-pair and aggregate deltas; return the exit code."""
    base_by_pair = {
        (r["workload"], r["config"]): r for r in baseline["results"]
    }
    print("\nvs baseline "
          f"({baseline.get('date', '?')}, "
          f"geomean {baseline['geomean_cycles_per_sec']:,.0f} cycles/s):")
    for r in current["results"]:
        b = base_by_pair.get((r["workload"], r["config"]))
        if b is None:
            print(f"  {r['workload']} x {r['config']}: (new pair)")
            continue
        ratio = r["cycles_per_sec"] / b["cycles_per_sec"]
        print(f"  {r['workload']} x {r['config']}: {ratio:.2f}x "
              f"({b['cycles_per_sec']:,.0f} -> "
              f"{r['cycles_per_sec']:,.0f} cycles/s)")
    ratio = (current["geomean_cycles_per_sec"]
             / baseline["geomean_cycles_per_sec"])
    print(f"  geomean: {ratio:.2f}x")
    if ratio < 1.0 - tolerance:
        print(f"PERF GATE FAILED: geomean regressed to {ratio:.2f}x "
              f"(tolerance {tolerance:.0%})")
        return 1
    print("perf gate ok")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run only the quick pinned smoke pairs "
                             "(shorthand for --suite smoke)")
    parser.add_argument("--suite", choices=sorted(SUITES), default=None,
                        help="pinned pair set to time; each suite is its "
                             "own baseline lane (default: full)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per pair (best is kept)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional geomean regression")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON (default: BENCH_<date>.json "
                             "at the repo root)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to compare against")
    parser.add_argument("--no-compare", action="store_true",
                        help="measure and write only; skip the gate")
    parser.add_argument("--fill-jobs", default="1,2", metavar="LIST",
                        help="comma-separated worker counts for the "
                             "sweep-engine fill measurement (default: "
                             "'1,2'; empty string skips it)")
    parser.add_argument("--service-fill", action="store_true",
                        help="also time a cold fill routed through an "
                             "in-process simulation daemon (records the "
                             "service overhead; informational, never "
                             "gated)")
    parser.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="record this gate run (span trace, manifest, "
                             "a copy of the BENCH snapshot under bench/) "
                             "into DIR; defaults to $REPRO_OBS_DIR")
    args = parser.parse_args(argv)

    os.environ["REPRO_SCALE"] = PINNED_SCALE
    label = args.suite or ("smoke" if args.smoke else "full")
    pairs = SUITES[label]

    from repro.obs import RunObs, resolve_obs_dir

    obs = None
    obs_dir = resolve_obs_dir(args.obs_dir)
    if obs_dir is not None:
        obs = RunObs.create(
            obs_dir, "perfgate", argv=["perfgate"] + list(argv or []),
            config={"suite": label, "repeats": args.repeats,
                    "tolerance": args.tolerance,
                    "fill_jobs": args.fill_jobs},
            live=False)

    print(f"perfgate: {label} suite, {len(pairs)} pairs, "
          f"REPRO_SCALE={PINNED_SCALE}, best of {args.repeats}")
    report = run_suite(pairs, args.repeats, obs=obs)
    report["suite"] = label

    fill_jobs = [int(j) for j in args.fill_jobs.split(",") if j.strip()]
    if fill_jobs:
        print(f"fill throughput (cold cache, jobs {fill_jobs}):")
        report["fill"] = measure_fill(pairs, fill_jobs, obs=obs)
        # Headline campaign-throughput metric: the best fill observed.
        report["fill_pairs_per_min"] = max(
            s["fill_pairs_per_min"] for s in report["fill"]
        )
    if args.service_fill:
        jobs = fill_jobs[-1] if fill_jobs else 1
        print("fill throughput via the simulation daemon "
              "(cold cache):")
        report["service"] = measure_service_fill(pairs, jobs, obs=obs)

    out_path = args.out
    if out_path is None:
        # Suite-qualified for the non-default lanes so a same-day run of
        # two suites never overwrites one snapshot with the other.
        stem = f"BENCH_{report['date']}"
        if label != "full":
            stem += f"_{label}"
        out_path = REPO_ROOT / f"{stem}.json"
    out_path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"\ngeomean {report['geomean_cycles_per_sec']:,.0f} cycles/s, "
          f"peak RSS {report['peak_rss_kb'] / 1024:.0f} MB")
    print(f"wrote {out_path}")

    if obs is not None:
        # A copy under <obs-dir>/bench/ is what lets `repro.obs regress
        # --obs-dir` place this very run at the end of the BENCH chain.
        bench_dir = obs.run.dir / "bench"
        bench_dir.mkdir(exist_ok=True)
        (bench_dir / out_path.name).write_text(
            json.dumps(report, indent=1) + "\n")

    exit_code = 0
    try:
        if args.no_compare:
            return 0
        baseline_path = find_baseline(out_path, args.baseline, suite=label)
        if baseline_path is None:
            print("no baseline found; gate skipped")
            return 0
        baseline = json.loads(baseline_path.read_text())
        print(f"baseline: {baseline_path}")
        exit_code = compare(report, baseline, args.tolerance)
        return exit_code
    finally:
        if obs is not None:
            obs.finish(metrics={
                "suite": label,
                "geomean_cycles_per_sec":
                    report["geomean_cycles_per_sec"],
                "fill_pairs_per_min": report.get("fill_pairs_per_min"),
                "bench_file": out_path.name,
                "gate_exit": exit_code,
            })


if __name__ == "__main__":
    raise SystemExit(main())
